//! A counting [`GlobalAlloc`] wrapper around the system allocator.
//!
//! The zero-allocation codec API (`cuszp_core::fast::compress_into` /
//! `decompress_into`) promises *no heap traffic after arena warm-up*.
//! That promise is only worth something if it is executable: install
//! [`CountingAllocator`] as the `#[global_allocator]` of a test or bench
//! binary and diff [`snapshot`]s around the call under scrutiny.
//!
//! ```
//! // In a binary / test crate root:
//! // #[global_allocator]
//! // static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;
//! let before = alloc_counter::snapshot();
//! let v = vec![0u8; 64];
//! drop(v);
//! let delta = alloc_counter::snapshot().since(&before);
//! // Under the counting allocator `delta.allocations` would be ≥ 1 here.
//! # let _ = delta;
//! ```
//!
//! Counting costs one relaxed atomic add per allocator call, so the
//! allocator is cheap enough to leave installed in the `repro` harness
//! binary: throughput numbers measured under it are representative.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static REALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts every call. Zero-sized; install
/// with `#[global_allocator]`.
pub struct CountingAllocator;

// SAFETY: delegates every operation verbatim to `System`; the counters
// are metadata only and never influence the returned pointers.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// A point-in-time reading of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// `alloc` + `alloc_zeroed` calls.
    pub allocations: u64,
    /// `dealloc` calls.
    pub deallocations: u64,
    /// `realloc` calls (growth of an existing block).
    pub reallocations: u64,
    /// Bytes requested across `alloc`/`alloc_zeroed`/`realloc`.
    pub bytes_allocated: u64,
}

impl Snapshot {
    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            allocations: self.allocations - earlier.allocations,
            deallocations: self.deallocations - earlier.deallocations,
            reallocations: self.reallocations - earlier.reallocations,
            bytes_allocated: self.bytes_allocated - earlier.bytes_allocated,
        }
    }

    /// Total heap operations of any kind — the number that must be zero
    /// in the codec's steady state.
    pub fn heap_ops(&self) -> u64 {
        self.allocations + self.deallocations + self.reallocations
    }
}

/// Read the global counters. Counts stay zero unless [`CountingAllocator`]
/// is installed as the binary's `#[global_allocator]`.
pub fn snapshot() -> Snapshot {
    Snapshot {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        deallocations: DEALLOCATIONS.load(Ordering::Relaxed),
        reallocations: REALLOCATIONS.load(Ordering::Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
    }
}

/// Whether the counters are live, i.e. the counting allocator has seen at
/// least one call. A binary using the system allocator directly reads
/// all-zero snapshots, which would make "0 allocations" assertions pass
/// vacuously — gate such assertions on this.
pub fn is_installed() -> bool {
    snapshot().heap_ops() > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = Snapshot {
            allocations: 10,
            deallocations: 4,
            reallocations: 1,
            bytes_allocated: 100,
        };
        let b = Snapshot {
            allocations: 13,
            deallocations: 5,
            reallocations: 1,
            bytes_allocated: 160,
        };
        let d = b.since(&a);
        assert_eq!(d.allocations, 3);
        assert_eq!(d.deallocations, 1);
        assert_eq!(d.reallocations, 0);
        assert_eq!(d.bytes_allocated, 60);
        assert_eq!(d.heap_ops(), 4);
    }
}
