//! The fused device kernels and the sequential host codec must produce
//! byte-identical streams and reconstructions on every dataset — the
//! strongest cross-implementation check in the repository.

use cuszp_core::{host_ref, Cuszp, CuszpConfig, ErrorBound};
use datasets::{generate_subset, DatasetId, Scale};
use gpu_sim::{DeviceSpec, Gpu};

#[test]
fn device_and_host_streams_are_identical_on_all_datasets() {
    let codec = Cuszp::new();
    for id in DatasetId::all() {
        for field in generate_subset(id, Scale::Tiny, 2) {
            let eb = codec.resolve_bound(&field.data, ErrorBound::Rel(1e-3));
            let host_stream = host_ref::compress(&field.data, eb, codec.config);

            let mut gpu = Gpu::new(DeviceSpec::a100()).with_workers(3);
            let input = gpu.h2d(&field.data);
            let dc = codec.compress_device(&mut gpu, &input, eb);
            let dev_stream = dc.to_host(&mut gpu);
            assert_eq!(
                dev_stream,
                host_stream,
                "stream mismatch on {}/{}",
                id.name(),
                field.name
            );

            let host_recon: Vec<f32> = host_ref::decompress(&host_stream);
            let out: gpu_sim::DeviceBuffer<f32> = codec.decompress_device(&mut gpu, &dc);
            let dev_recon = gpu.d2h(&out);
            assert_eq!(
                host_recon,
                dev_recon,
                "reconstruction mismatch on {}/{}",
                id.name(),
                field.name
            );
        }
    }
}

#[test]
fn equivalence_holds_for_nondefault_configs() {
    let field = generate_subset(DatasetId::Rtm, Scale::Tiny, 1).remove(0);
    for (block_len, lorenzo) in [(8usize, true), (64, true), (32, false), (128, false)] {
        let codec = Cuszp::with_config(CuszpConfig {
            block_len,
            lorenzo,
            ..CuszpConfig::default()
        });
        let eb = codec.resolve_bound(&field.data, ErrorBound::Rel(1e-2));
        let host_stream = host_ref::compress(&field.data, eb, codec.config);
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(&field.data);
        let dc = codec.compress_device(&mut gpu, &input, eb);
        assert_eq!(
            dc.to_host(&mut gpu),
            host_stream,
            "L={block_len} lorenzo={lorenzo}"
        );
    }
}

#[test]
fn stream_roundtrips_through_serialized_file_form() {
    let field = generate_subset(DatasetId::CesmAtm, Scale::Tiny, 1).remove(0);
    let codec = Cuszp::new();
    let stream = codec.compress(&field.data, ErrorBound::Rel(1e-3));
    let bytes = stream.to_bytes();
    let parsed = cuszp_core::Compressed::from_bytes(&bytes).expect("parse");
    assert_eq!(parsed, stream);
    // A stream that came back from disk decodes on the device too.
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let dc = cuszp_core::compressed_h2d(&mut gpu, &parsed);
    let out: gpu_sim::DeviceBuffer<f32> = codec.decompress_device(&mut gpu, &dc);
    assert_eq!(gpu.d2h(&out), codec.decompress::<f32>(&stream));
}
