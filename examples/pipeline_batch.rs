//! Batched multi-stream compression of many fields through the bounded
//! pipeline, with per-stream counters.
//!
//! ```bash
//! cargo run --release --example pipeline_batch
//! ```

use cuszp_repro::cuszp_core::{ChunkedCompressed, Cuszp, ErrorBound};
use cuszp_repro::cuszp_pipeline::{Pipeline, PipelineConfig};
use cuszp_repro::datasets::{generate_subset, DatasetId, Scale};

fn main() {
    // A batch: a few NYX fields, as a checkpoint writer would see them.
    let fields = generate_subset(DatasetId::Nyx, Scale::Tiny, 4);
    let total_mb: f64 = fields.iter().map(|f| f.size_bytes() as f64).sum::<f64>() / 1.0e6;
    println!("batch: {} fields, {total_mb:.1} MB", fields.len());

    // Pipeline: worker pool + bounded submission queue. `submit` blocks
    // when `queue_depth` chunks are in flight — backpressure, not OOM.
    let mut pipe = Pipeline::new(PipelineConfig {
        chunk_elems: 1 << 12,
        ..PipelineConfig::with_workers(4)
    });
    for f in &fields {
        pipe.submit(&f.name, f.data.clone(), ErrorBound::Rel(1e-2));
    }
    let batch = pipe.finish();

    println!(
        "compressed {} chunks in {:.1} ms: ratio {:.2}, {:.3} GB/s aggregate",
        batch.stats.chunks(),
        batch.stats.wall_seconds * 1e3,
        batch.stats.ratio,
        batch.stats.throughput_gbps,
    );
    for s in &batch.stats.streams {
        println!(
            "  stream {}: {} chunks, {:.1} ms busy, {:.3} GB/s",
            s.worker,
            s.chunks,
            s.busy_seconds * 1e3,
            s.throughput_gbps(),
        );
    }

    // Every field came back as a chunked container; each chunk is
    // byte-identical to the single-shot path, and the container survives
    // a serialize/parse round trip.
    let codec = Cuszp::new();
    for out in &batch.fields {
        let bytes = out.container.to_bytes();
        let parsed = ChunkedCompressed::from_bytes(&bytes).expect("container parses");
        let restored: Vec<f32> = codec.decompress_chunked(&parsed);
        assert_eq!(restored.len() as u64, out.container.total_elements());
        println!(
            "  {}: {} chunks, {} -> {} bytes, latency {:.1} ms",
            out.name,
            out.container.num_chunks(),
            out.bytes_in,
            out.container.stream_bytes(),
            out.latency_seconds * 1e3,
        );
    }
}
