//! The `CUSZPHY1` hybrid frame: a lossless second stage over the
//! fixed-length stream, chosen per chunk.
//!
//! cuSZp's fixed-length encoding (paper §4.2) deliberately stops short of
//! entropy coding to stay at memory-bandwidth speed, and the paper's
//! block-level adaptivity discussion notes the ratio left on the table at
//! tight bounds, where bit-shuffled planes are mostly zero bytes. The
//! hybrid frame recovers that ratio *without* touching the lossy layer:
//! the serialized `CUSZP1` stream is split into chunks of
//! [`DEFAULT_CHUNK_BLOCKS`] blocks (each chunk = its fixed-length bytes
//! followed by its Eq-2 payload span), and every chunk is independently
//! re-coded by [`cuszp_entropy`]'s adaptive coder — passthrough,
//! constant flush, PackBits RLE, or canonical Huffman, whichever the
//! sampled estimator picks and the size check confirms.
//!
//! ## Frame layout (normative spec in `docs/FORMAT.md` §CUSZPHY1)
//!
//! ```text
//! magic "CUSZPHY1"  8 B
//! lorenzo           1 B       (0 | 1)
//! dtype             1 B       (0 = f32, 1 = f64)
//! num_elements      8 B  LE
//! block_len         4 B  LE
//! eb                8 B  LE   (absolute bound, f64 bits)
//! chunk_blocks      4 B  LE   (blocks per chunk, ≥ 1)
//! num_chunks        4 B  LE   (= ⌈num_blocks / chunk_blocks⌉)
//! chunk table       9 B × num_chunks: mode u8, comp_len u32, raw_len u32
//! chunk payloads    back-to-back, comp_len bytes each
//! ```
//!
//! Chunk payload offsets are prefix sums of the stored `comp_len`s, so
//! variable-length chunks stay randomly accessible: a partial read scans
//! the (tiny) table, not the payloads. Because every chunk falls back to
//! passthrough when coding would not shrink it, a hybrid frame's payload
//! never exceeds the plain stream's — and whole-frame fallback at the
//! call sites ([`crate::Cuszp::compress_serialized`], the store codec)
//! guarantees the *serialized* hybrid path is never larger than plain
//! `CUSZP1` either, per-frame header overhead included.
//!
//! Decoding is single-pass per chunk: entropy-decode into a scratch
//! buffer, re-validate the chunk as a standalone stream (fixed-length
//! count and the exact Eq-2 payload size), then run the normal fast
//! block decoder over exactly the requested blocks. The stage is
//! lossless, so the error-bound contract is untouched.

use crate::config::{CuszpConfig, SimdLevel};
use crate::dtype::{DType, FloatData};
use crate::encode::cmp_bytes_for;
use crate::fast::{self, Scratch};
use crate::format::{CompressedRef, FormatError, HEADER_BYTES};
use crate::simd::resolve_level;
pub use cuszp_entropy::Mode;
use cuszp_entropy::{
    decode_chunk, encode_chunk_at, select_mode_at, Tier, HUFFMAN4_HEADER_BYTES, HUFFMAN_TABLE_BYTES,
};

/// Map the host codec's dispatch level onto the entropy crate's [`Tier`]
/// (the entropy crate is dependency-free, so it mirrors `SimdLevel` with
/// its own enum). [`Tier::detect`] independently clamps to what the host
/// supports, so the mapping never enables unsupported instructions.
pub fn entropy_tier(level: SimdLevel) -> Tier {
    let t = match level {
        SimdLevel::Scalar => Tier::Scalar,
        SimdLevel::Avx2 => Tier::Avx2,
        SimdLevel::Avx512 => Tier::Avx512,
    };
    t.min(Tier::detect())
}

/// Magic bytes of the hybrid frame.
pub const HYBRID_MAGIC: [u8; 8] = *b"CUSZPHY1";
/// Serialized hybrid header size in bytes.
pub const HYBRID_HEADER_BYTES: usize = 8 + 1 + 1 + 8 + 4 + 8 + 4 + 4;
/// Bytes per chunk-table entry: mode byte + `comp_len` + `raw_len`.
pub const TABLE_ENTRY_BYTES: usize = 9;
/// Default blocks per chunk: 256 blocks (8192 elements at `L = 32`)
/// keeps the raw chunk around the coders' sweet spot (tens of KiB) while
/// the 9-byte table entry stays ≪ 0.1% overhead.
pub const DEFAULT_CHUNK_BLOCKS: usize = 256;
/// Stream bytes per chunk that [`auto_chunk_blocks`] aims for. The
/// entropy coders pay fixed per-chunk costs — a Huffman code build plus
/// a 12-bit decode table (~10 µs), the 128-byte lens table, `Huffman4`'s
/// 12-byte stream-end header — so on highly compressible planes (where
/// the cuSZp stream is 16–60× smaller than the floats) the default
/// 256-block chunk leaves only a couple of KiB of coded work to amortize
/// them over and table builds dominate the stage. ~32 KiB of stream per
/// chunk pushes those costs under a few percent while keeping random
/// access granularity reasonable.
pub const AUTO_CHUNK_STREAM_BYTES: usize = 32 << 10;
/// Ceiling for [`auto_chunk_blocks`]: even on extreme ratios a chunk
/// never exceeds 4096 blocks (16× the default), keeping decode
/// granularity bounded and the worst-case chunk scratch small.
pub const AUTO_CHUNK_MAX_BLOCKS: usize = 4096;

/// Pick `chunk_blocks` for `r` so each chunk spans roughly
/// [`AUTO_CHUNK_STREAM_BYTES`] of the cuSZp stream, rounded down to a
/// power of two and clamped to `[DEFAULT_CHUNK_BLOCKS,
/// AUTO_CHUNK_MAX_BLOCKS]`. Deterministic in the stream geometry alone,
/// so re-encoding the same stream always reproduces the same framing.
pub fn auto_chunk_blocks(r: &CompressedRef<'_>) -> usize {
    let num_blocks = r.fixed_lengths.len().max(1);
    let stream = r.fixed_lengths.len() + r.payload.len();
    let per_block = stream.div_ceil(num_blocks).max(1);
    let want = (AUTO_CHUNK_STREAM_BYTES / per_block).max(1);
    let mut p = want.next_power_of_two();
    if p > want {
        p >>= 1;
    }
    p.clamp(DEFAULT_CHUNK_BLOCKS, AUTO_CHUNK_MAX_BLOCKS)
}

/// Largest `chunk_blocks` the wire format admits. Together with the
/// `u32` raw-size invariant this caps how much geometry a header can
/// claim per stored table entry, so a tiny untrusted frame cannot
/// command multi-gigabyte scratch or output allocations just by naming
/// an absurd chunk shape. 2²⁰ blocks is ~4096× the default and far
/// beyond any useful access granularity.
pub const MAX_CHUNK_BLOCKS: usize = 1 << 20;

/// Reusable buffer for chunk staging. Capacity only grows, so encode and
/// decode loops reach a zero-allocation steady state like
/// [`crate::fast::Scratch`].
#[derive(Debug, Default)]
pub struct HybridScratch {
    /// One chunk's raw bytes (fixed lengths ++ payload span).
    raw: Vec<u8>,
}

impl HybridScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-grow for frames of up to `elems` elements so later encodes
    /// and decodes allocate nothing.
    pub fn warm_for<T: FloatData>(&mut self, elems: usize, cfg: CuszpConfig, chunk_blocks: usize) {
        let cap = max_chunk_raw_bytes(T::DTYPE, cfg.block_len, chunk_blocks)
            .min(fast::max_stream_bytes::<T>(elems, cfg));
        if self.raw.capacity() < cap {
            self.raw.reserve(cap - self.raw.len());
        }
    }

    /// Bytes currently held (diagnostic).
    pub fn capacity_bytes(&self) -> usize {
        self.raw.capacity()
    }
}

/// Worst-case raw bytes of one chunk: every block stores a fixed-length
/// byte plus a maximal Eq-2 payload.
fn max_chunk_raw_bytes(dtype: DType, block_len: usize, chunk_blocks: usize) -> usize {
    let _ = dtype; // the wire format admits F ≤ 64 for either dtype
    chunk_blocks * (1 + cmp_bytes_for(64, block_len) as usize)
}

/// Upper bound on the serialized hybrid frame for `elems` elements —
/// what a caller should reserve to keep re-encoding allocation-free.
pub fn max_frame_bytes<T: FloatData>(elems: usize, cfg: CuszpConfig, chunk_blocks: usize) -> usize {
    let num_blocks = elems.div_ceil(cfg.block_len);
    let chunks = num_blocks.div_ceil(chunk_blocks.max(1));
    HYBRID_HEADER_BYTES + chunks * TABLE_ENTRY_BYTES + fast::max_stream_bytes::<T>(elems, cfg)
        - HEADER_BYTES
}

/// Encode `r` as a `CUSZPHY1` frame into `out` (cleared first), letting
/// the sampled estimator pick each chunk's mode, at the default-resolved
/// SIMD tier. See [`encode_with_at`].
pub fn encode(
    r: &CompressedRef<'_>,
    chunk_blocks: usize,
    hs: &mut HybridScratch,
    out: &mut Vec<u8>,
) {
    encode_with(r, chunk_blocks, None, hs, out)
}

/// [`encode`] at an explicit SIMD dispatch level (frames are
/// byte-identical at every level; the level only selects kernels).
pub fn encode_at(
    r: &CompressedRef<'_>,
    chunk_blocks: usize,
    level: SimdLevel,
    hs: &mut HybridScratch,
    out: &mut Vec<u8>,
) {
    encode_with_at(r, chunk_blocks, None, level, hs, out)
}

/// [`encode_with`] at the default-resolved SIMD tier
/// (`resolve_level(None)`: `CUSZP_SIMD`, then runtime detection).
pub fn encode_with(
    r: &CompressedRef<'_>,
    chunk_blocks: usize,
    force: Option<Mode>,
    hs: &mut HybridScratch,
    out: &mut Vec<u8>,
) {
    encode_with_at(r, chunk_blocks, force, resolve_level(None), hs, out)
}

/// Encode `r` as a `CUSZPHY1` frame into `out` (cleared first).
///
/// `force` pins every chunk to one requested mode — the per-mode
/// benchmark rows — while `None` runs the estimator per chunk. Either
/// way [`cuszp_entropy::encode_chunk`]'s size check applies, so the
/// recorded mode may still fall back to [`Mode::Pass`] and no chunk is
/// ever stored larger than its raw bytes. `level` selects the entropy
/// coders' SIMD kernels only — the emitted frame is byte-identical at
/// every level (`tests/entropy_tiers.rs` pins this).
///
/// # Panics
/// Panics if `r` is not structurally valid ([`CompressedRef::validate`]),
/// or if `chunk_blocks` is zero, exceeds [`MAX_CHUNK_BLOCKS`], or its
/// raw chunk size cannot be indexed by the table's `u32` fields — the
/// same limits [`HybridRef::parse`] enforces, so every encoded frame
/// parses.
pub fn encode_with_at(
    r: &CompressedRef<'_>,
    chunk_blocks: usize,
    force: Option<Mode>,
    level: SimdLevel,
    hs: &mut HybridScratch,
    out: &mut Vec<u8>,
) {
    let tier = entropy_tier(level);
    r.validate().expect("hybrid encode requires a valid stream");
    assert!(chunk_blocks >= 1, "chunk_blocks must be positive");
    assert!(
        chunk_blocks <= MAX_CHUNK_BLOCKS,
        "chunk_blocks exceeds MAX_CHUNK_BLOCKS"
    );
    assert!(
        max_chunk_raw_bytes(r.dtype, r.block_len as usize, chunk_blocks) <= u32::MAX as usize,
        "chunk raw size must fit the table's u32"
    );
    let num_blocks = r.num_blocks();
    let chunks = num_blocks.div_ceil(chunk_blocks);
    assert!(chunks <= u32::MAX as usize, "chunk count must fit u32");

    out.clear();
    out.extend_from_slice(&HYBRID_MAGIC);
    out.push(r.lorenzo as u8);
    out.push(r.dtype.to_byte());
    out.extend_from_slice(&r.num_elements.to_le_bytes());
    out.extend_from_slice(&r.block_len.to_le_bytes());
    out.extend_from_slice(&r.eb.to_le_bytes());
    out.extend_from_slice(&(chunk_blocks as u32).to_le_bytes());
    out.extend_from_slice(&(chunks as u32).to_le_bytes());
    let table_at = out.len();
    out.resize(table_at + chunks * TABLE_ENTRY_BYTES, 0);

    for c in 0..chunks {
        let b0 = c * chunk_blocks;
        let b1 = ((c + 1) * chunk_blocks).min(num_blocks);
        let span = r
            .payload_span(b0..b1)
            .expect("validated stream has in-range spans");
        hs.raw.clear();
        hs.raw.extend_from_slice(&r.fixed_lengths[b0..b1]);
        hs.raw.extend_from_slice(&r.payload[span]);

        let mode = force.unwrap_or_else(|| select_mode_at(tier, &hs.raw));
        let mark = out.len();
        let used = encode_chunk_at(tier, mode, &hs.raw, out);
        let comp_len = (out.len() - mark) as u32;
        let e = table_at + c * TABLE_ENTRY_BYTES;
        out[e] = used.to_byte();
        out[e + 1..e + 5].copy_from_slice(&comp_len.to_le_bytes());
        out[e + 5..e + 9].copy_from_slice(&(hs.raw.len() as u32).to_le_bytes());
    }
}

/// A parsed `CUSZPHY1` frame borrowing its table and payload from the
/// serialized bytes. [`HybridRef::parse`] performs the full structural
/// validation documented in `docs/FORMAT.md`; per-chunk payload contents
/// are validated when decoded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridRef<'a> {
    /// Element count of the original array.
    pub num_elements: u64,
    /// Block length `L` of the inner fixed-length stream.
    pub block_len: u32,
    /// The absolute error bound of the inner stream.
    pub eb: f64,
    /// Whether Lorenzo prediction was applied.
    pub lorenzo: bool,
    /// Element type of the original data.
    pub dtype: DType,
    /// Blocks per chunk.
    pub chunk_blocks: u32,
    table: &'a [u8],
    payload: &'a [u8],
}

impl<'a> HybridRef<'a> {
    /// Parse and validate a serialized hybrid frame.
    ///
    /// Validation order (each check only runs once the previous passed):
    /// header length → magic → header field sanity (lorenzo, dtype,
    /// block length, bound, chunk size incl. [`MAX_CHUNK_BLOCKS`] and
    /// the `u32` raw-size invariant, element count addressability) →
    /// chunk count vs geometry → table bounds → per-entry mode byte and
    /// length invariants (`raw_len` bounded by the chunk's **actual**
    /// block count, never the header's nominal `chunk_blocks`) → exact
    /// payload size. Every rejection is a typed [`FormatError`]; nothing
    /// panics on malformed bytes.
    ///
    /// A frame that parses is internally consistent, but its claimed
    /// decoded size can still legitimately dwarf the physical input
    /// (Constant chunks store one byte). Consumers of untrusted bytes
    /// must bound output allocation themselves — e.g. via
    /// [`crate::Cuszp::decompress_serialized_bounded`] or a payload cap
    /// checked against [`HybridRef::num_elements`] before allocating.
    pub fn parse(bytes: &'a [u8]) -> Result<HybridRef<'a>, FormatError> {
        if bytes.len() < HYBRID_HEADER_BYTES {
            return Err(FormatError::Truncated);
        }
        if bytes[..8] != HYBRID_MAGIC {
            return Err(FormatError::BadMagic);
        }
        let lorenzo = match bytes[8] {
            0 => false,
            1 => true,
            _ => return Err(FormatError::Corrupt("bad lorenzo flag")),
        };
        let dtype = DType::from_byte(bytes[9]).ok_or(FormatError::Corrupt("bad dtype"))?;
        let num_elements = u64::from_le_bytes(bytes[10..18].try_into().expect("len checked"));
        let block_len = u32::from_le_bytes(bytes[18..22].try_into().expect("len checked"));
        let eb = f64::from_le_bytes(bytes[22..30].try_into().expect("len checked"));
        let chunk_blocks = u32::from_le_bytes(bytes[30..34].try_into().expect("len checked"));
        let num_chunks = u32::from_le_bytes(bytes[34..38].try_into().expect("len checked"));
        if block_len == 0 || block_len % 8 != 0 || block_len > 4096 {
            return Err(FormatError::Corrupt("bad block length"));
        }
        if !(eb.is_finite() && eb > 0.0) {
            return Err(FormatError::Corrupt("bad error bound"));
        }
        if chunk_blocks == 0 {
            return Err(FormatError::Corrupt("bad chunk size"));
        }
        // Worst-case raw bytes per block (fixed-length byte + maximal
        // Eq-2 payload), in u64 so the bound cannot itself overflow.
        let per_block_worst = 1 + u64::from(cmp_bytes_for(64, block_len as usize));
        if chunk_blocks as usize > MAX_CHUNK_BLOCKS
            || u64::from(chunk_blocks) * per_block_worst > u64::from(u32::MAX)
        {
            return Err(FormatError::Corrupt("chunk size exceeds limit"));
        }
        if usize::try_from(num_elements).is_err() {
            return Err(FormatError::Corrupt("element count exceeds address space"));
        }
        let num_blocks = num_elements.div_ceil(u64::from(block_len));
        if u64::from(num_chunks) != num_blocks.div_ceil(u64::from(chunk_blocks)) {
            return Err(FormatError::Corrupt("chunk count vs geometry"));
        }
        let table_bytes = u64::from(num_chunks) * TABLE_ENTRY_BYTES as u64;
        if (bytes.len() as u64) < HYBRID_HEADER_BYTES as u64 + table_bytes {
            return Err(FormatError::Truncated);
        }
        let table = &bytes[HYBRID_HEADER_BYTES..HYBRID_HEADER_BYTES + table_bytes as usize];
        let payload = &bytes[HYBRID_HEADER_BYTES + table_bytes as usize..];

        let mut total_comp = 0u64;
        for c in 0..num_chunks as usize {
            let e = &table[c * TABLE_ENTRY_BYTES..(c + 1) * TABLE_ENTRY_BYTES];
            let mode = Mode::from_byte(e[0]).ok_or(FormatError::UnknownHybridMode(e[0]))?;
            let comp_len = u64::from(u32::from_le_bytes(e[1..5].try_into().expect("len")));
            let raw_len = u64::from(u32::from_le_bytes(e[5..9].try_into().expect("len")));
            // Bound raw_len by the chunk's *actual* block count — the
            // nominal `chunk_blocks` would let a short (or lying) frame
            // claim scratch far beyond what its geometry can decode to.
            let blocks_in_chunk = blocks_in_chunk(num_blocks, chunk_blocks, c as u64);
            if raw_len < blocks_in_chunk || raw_len > blocks_in_chunk * per_block_worst {
                return Err(FormatError::Corrupt("chunk raw length out of range"));
            }
            match mode {
                Mode::Pass => {
                    if comp_len != raw_len {
                        return Err(FormatError::Corrupt("pass chunk size vs raw"));
                    }
                }
                Mode::Constant => {
                    if comp_len != 1 {
                        return Err(FormatError::Corrupt("constant chunk size"));
                    }
                }
                Mode::Rle | Mode::Huffman | Mode::Huffman4 => {
                    if comp_len == 0 || comp_len >= raw_len {
                        return Err(FormatError::Corrupt("coded chunk not smaller than raw"));
                    }
                    // The Huffman forms carry a fixed header no valid
                    // chunk can undercut; rejecting here keeps the
                    // decode path's slicing trivially in range.
                    if mode == Mode::Huffman && comp_len <= HUFFMAN_TABLE_BYTES as u64 {
                        return Err(FormatError::Corrupt("huffman chunk below table size"));
                    }
                    if mode == Mode::Huffman4 && comp_len <= HUFFMAN4_HEADER_BYTES as u64 {
                        return Err(FormatError::Corrupt("huffman4 chunk below header size"));
                    }
                }
            }
            total_comp += comp_len;
        }
        if (payload.len() as u64) < total_comp {
            return Err(FormatError::Truncated);
        }
        if (payload.len() as u64) > total_comp {
            return Err(FormatError::Corrupt("trailing bytes"));
        }
        Ok(HybridRef {
            num_elements,
            block_len,
            eb,
            lorenzo,
            dtype,
            chunk_blocks,
            table,
            payload,
        })
    }

    /// Number of blocks of the inner fixed-length stream.
    pub fn num_blocks(&self) -> usize {
        (self.num_elements as usize).div_ceil(self.block_len as usize)
    }

    /// Number of chunks in the table.
    pub fn num_chunks(&self) -> usize {
        self.table.len() / TABLE_ENTRY_BYTES
    }

    /// The stored stream size (table + payloads) — the hybrid analogue
    /// of [`CompressedRef::stream_bytes`].
    pub fn stream_bytes(&self) -> u64 {
        (self.table.len() + self.payload.len()) as u64
    }

    /// Stream size plus the frame header.
    pub fn total_bytes(&self) -> u64 {
        self.stream_bytes() + HYBRID_HEADER_BYTES as u64
    }

    /// Chunk `c`'s table entry: `(mode, comp_len, raw_len)`.
    pub fn entry(&self, c: usize) -> (Mode, u32, u32) {
        let e = &self.table[c * TABLE_ENTRY_BYTES..(c + 1) * TABLE_ENTRY_BYTES];
        (
            Mode::from_byte(e[0]).expect("validated at parse"),
            u32::from_le_bytes(e[1..5].try_into().expect("len")),
            u32::from_le_bytes(e[5..9].try_into().expect("len")),
        )
    }

    /// Per-mode chunk counts, indexed by mode byte (benchmark reporting).
    pub fn mode_histogram(&self) -> [usize; 5] {
        let mut h = [0usize; 5];
        for c in 0..self.num_chunks() {
            h[self.entry(c).0.to_byte() as usize] += 1;
        }
        h
    }
}

/// Blocks covered by chunk `c`.
fn blocks_in_chunk(num_blocks: u64, chunk_blocks: u32, c: u64) -> u64 {
    let start = c * u64::from(chunk_blocks);
    num_blocks.min(start + u64::from(chunk_blocks)) - start
}

/// Decode blocks `blocks` of the frame into `out`, touching only the
/// chunks that overlap the range (the partial-read path behind the
/// store's `decode_blocks`). Returns the number of stored chunk-payload
/// bytes read — the bytes-touched accounting partial reads report.
///
/// `out.len()` must equal the element count the block range covers
/// (`min(blocks.end·L, N) − blocks.start·L`).
///
/// Each touched chunk is entropy-decoded into the scratch buffer and
/// re-validated as a standalone fixed-length stream (fixed-length bytes
/// in range, payload exactly Eq 2) before the fast block decoder runs —
/// so a frame that parses but carries inconsistent chunk *contents*
/// still yields a typed error, never a panic or out-of-bounds decode.
///
/// # Panics
/// Panics on API misuse only: a dtype mismatch between `T` and the
/// frame, or an out-of-range `blocks`/`out` geometry.
pub fn decode_blocks_into<T: FloatData>(
    r: &HybridRef<'_>,
    blocks: std::ops::Range<usize>,
    hs: &mut HybridScratch,
    scratch: &mut Scratch,
    out: &mut [T],
) -> Result<usize, FormatError> {
    assert_eq!(r.dtype, T::DTYPE, "frame element type mismatch");
    let l = r.block_len as usize;
    let nb = r.num_blocks();
    assert!(
        blocks.start <= blocks.end && blocks.end <= nb,
        "block range out of bounds"
    );
    let n = r.num_elements as usize;
    let covered = n.min(blocks.end * l).saturating_sub(blocks.start * l);
    assert_eq!(out.len(), covered, "output length vs block range");
    if covered == 0 {
        return Ok(0);
    }

    let k = r.chunk_blocks as usize;
    let c0 = blocks.start / k;
    let c1 = (blocks.end - 1) / k;
    let mut offset = 0usize;
    let mut touched = 0usize;
    for c in 0..=c1 {
        let (mode, comp_len, raw_len) = r.entry(c);
        let (comp_len, raw_len) = (comp_len as usize, raw_len as usize);
        if c < c0 {
            offset += comp_len;
            continue;
        }
        touched += comp_len;
        let comp = &r.payload[offset..offset + comp_len];
        offset += comp_len;

        hs.raw.clear();
        hs.raw.resize(raw_len, 0);
        decode_chunk(mode, comp, &mut hs.raw).map_err(|e| FormatError::Entropy(e.0))?;

        // Re-validate the chunk as a standalone stream before the fast
        // decoder slices payload at Eq-2 offsets.
        let chunk_first = c * k;
        let bc = blocks_in_chunk(nb as u64, r.chunk_blocks, c as u64) as usize;
        let chunk_elems = n.min((chunk_first + bc) * l) - chunk_first * l;
        let fixed_lengths = &hs.raw[..bc];
        if fixed_lengths.iter().any(|&f| f > 64) {
            return Err(FormatError::Corrupt("fixed length exceeds 64 bits"));
        }
        let chunk_ref = CompressedRef {
            num_elements: chunk_elems as u64,
            block_len: r.block_len,
            eb: r.eb,
            lorenzo: r.lorenzo,
            dtype: r.dtype,
            fixed_lengths,
            payload: &hs.raw[bc..],
        };
        chunk_ref.validate()?;

        let lo = blocks.start.max(chunk_first) - chunk_first;
        let hi = blocks.end.min(chunk_first + bc) - chunk_first;
        let out_at = (chunk_first + lo) * l - blocks.start * l;
        let out_elems = chunk_elems.min(hi * l) - lo * l;
        fast::decompress_blocks_into(
            chunk_ref,
            lo..hi,
            scratch,
            &mut out[out_at..out_at + out_elems],
        );
    }
    Ok(touched)
}

/// Decode the whole frame into `out` (`out.len()` must equal the frame's
/// element count).
pub fn decode_into<T: FloatData>(
    r: &HybridRef<'_>,
    hs: &mut HybridScratch,
    scratch: &mut Scratch,
    out: &mut [T],
) -> Result<(), FormatError> {
    decode_blocks_into(r, 0..r.num_blocks(), hs, scratch, out).map(|_| ())
}

/// Reconstruct the exact plain `CUSZP1` serialization the frame was
/// encoded from, into `out` (cleared first) — the second stage undone,
/// byte for byte. This is what the differential proptests pin: hybrid
/// framing is invertible down to the serialized pre-stage payload.
pub fn decode_stream_bytes(
    r: &HybridRef<'_>,
    hs: &mut HybridScratch,
    out: &mut Vec<u8>,
) -> Result<(), FormatError> {
    let nb = r.num_blocks();
    let mut total_payload = 0usize;
    for c in 0..r.num_chunks() {
        let (_, _, raw_len) = r.entry(c);
        let bc = blocks_in_chunk(nb as u64, r.chunk_blocks, c as u64) as usize;
        total_payload += (raw_len as usize)
            .checked_sub(bc)
            .expect("parse enforces raw_len ≥ blocks");
    }

    out.clear();
    out.resize(HEADER_BYTES + nb + total_payload, 0);
    let inner = CompressedRef {
        num_elements: r.num_elements,
        block_len: r.block_len,
        eb: r.eb,
        lorenzo: r.lorenzo,
        dtype: r.dtype,
        fixed_lengths: &[],
        payload: &[],
    };
    out[..HEADER_BYTES].copy_from_slice(&inner.header_bytes());

    let mut offset = 0usize;
    let mut fl_at = HEADER_BYTES;
    let mut pay_at = HEADER_BYTES + nb;
    for c in 0..r.num_chunks() {
        let (mode, comp_len, raw_len) = r.entry(c);
        let comp = &r.payload[offset..offset + comp_len as usize];
        offset += comp_len as usize;
        hs.raw.clear();
        hs.raw.resize(raw_len as usize, 0);
        decode_chunk(mode, comp, &mut hs.raw).map_err(|e| FormatError::Entropy(e.0))?;
        let bc = blocks_in_chunk(nb as u64, r.chunk_blocks, c as u64) as usize;
        out[fl_at..fl_at + bc].copy_from_slice(&hs.raw[..bc]);
        fl_at += bc;
        let pay = raw_len as usize - bc;
        out[pay_at..pay_at + pay].copy_from_slice(&hs.raw[bc..]);
        pay_at += pay;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ErrorBound;
    use crate::Cuszp;

    fn wave(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.004).sin() * 8.0).collect()
    }

    fn frame(data: &[f32], eb: f64, chunk_blocks: usize, force: Option<Mode>) -> Vec<u8> {
        let c = fast::compress(data, eb, CuszpConfig::default());
        let mut hs = HybridScratch::new();
        let mut out = Vec::new();
        encode_with(&c.as_ref(), chunk_blocks, force, &mut hs, &mut out);
        out
    }

    #[test]
    fn roundtrip_matches_plain_decode() {
        for n in [0usize, 1, 31, 32, 8192, 100_000] {
            let data = wave(n);
            let c = fast::compress(&data, 1e-3, CuszpConfig::default());
            let plain: Vec<f32> = fast::decompress(&c);
            let bytes = frame(&data, 1e-3, DEFAULT_CHUNK_BLOCKS, None);
            let r = HybridRef::parse(&bytes).unwrap();
            let mut out = vec![0f32; n];
            decode_into(&r, &mut HybridScratch::new(), &mut Scratch::new(), &mut out).unwrap();
            assert_eq!(out, plain, "n = {n}");
        }
    }

    #[test]
    fn every_forced_mode_roundtrips() {
        let data = wave(50_000);
        let c = fast::compress(&data, 1e-3, CuszpConfig::default());
        let plain: Vec<f32> = fast::decompress(&c);
        for mode in Mode::ALL {
            let bytes = frame(&data, 1e-3, DEFAULT_CHUNK_BLOCKS, Some(mode));
            let r = HybridRef::parse(&bytes).unwrap();
            let mut out = vec![0f32; data.len()];
            decode_into(&r, &mut HybridScratch::new(), &mut Scratch::new(), &mut out).unwrap();
            assert_eq!(out, plain, "forced {mode}");
        }
    }

    #[test]
    fn adaptive_is_never_larger_than_pass() {
        for eb in [1e-1, 1e-3, 1e-5] {
            let data = wave(65_000);
            let adaptive = frame(&data, eb, DEFAULT_CHUNK_BLOCKS, None);
            let pass = frame(&data, eb, DEFAULT_CHUNK_BLOCKS, Some(Mode::Pass));
            assert!(adaptive.len() <= pass.len(), "eb = {eb}");
        }
    }

    #[test]
    fn auto_chunk_blocks_tracks_stream_density() {
        // Dense stream (pass-like): ≥ 4 bytes/block at L = 32 means the
        // 32 KiB target is hit well under the 4096-block ceiling.
        let dense = fast::compress(&wave(1 << 20), 1e-6, CuszpConfig::default());
        let dense_r = dense.as_ref();
        let cb_dense = auto_chunk_blocks(&dense_r);
        assert!((DEFAULT_CHUNK_BLOCKS..=AUTO_CHUNK_MAX_BLOCKS).contains(&cb_dense));
        assert!(cb_dense.is_power_of_two(), "power-of-two framing");
        // Sparse stream (near-constant data → tiny payload) amortizes
        // per-chunk table costs with strictly coarser chunks.
        let sparse = fast::compress(&vec![0.0f32; 1 << 20], 1e-2, CuszpConfig::default());
        let sparse_r = sparse.as_ref();
        let cb_sparse = auto_chunk_blocks(&sparse_r);
        assert!(cb_sparse >= cb_dense, "sparser stream → coarser chunks");
        assert_eq!(
            cb_sparse, AUTO_CHUNK_MAX_BLOCKS,
            "1 byte/block hits the cap"
        );
        // Deterministic in the stream geometry.
        assert_eq!(cb_dense, auto_chunk_blocks(&dense.as_ref()));
        // Tiny inputs stay in range (oversized chunk_blocks is legal:
        // the frame simply holds one chunk).
        let tiny = fast::compress(&wave(100), 1e-3, CuszpConfig::default());
        let cb_tiny = auto_chunk_blocks(&tiny.as_ref());
        assert!((DEFAULT_CHUNK_BLOCKS..=AUTO_CHUNK_MAX_BLOCKS).contains(&cb_tiny));
    }

    #[test]
    fn partial_decode_matches_full() {
        let data = wave(40_000);
        let bytes = frame(&data, 1e-3, 64, None);
        let r = HybridRef::parse(&bytes).unwrap();
        let mut full = vec![0f32; data.len()];
        let mut hs = HybridScratch::new();
        let mut scratch = Scratch::new();
        decode_into(&r, &mut hs, &mut scratch, &mut full).unwrap();
        let l = r.block_len as usize;
        for (b0, b1) in [
            (0usize, 1usize),
            (5, 64),
            (63, 65),
            (100, 1250),
            (1240, 1250),
        ] {
            let covered = data.len().min(b1 * l) - b0 * l;
            let mut part = vec![0f32; covered];
            let touched = decode_blocks_into(&r, b0..b1, &mut hs, &mut scratch, &mut part).unwrap();
            assert_eq!(part, full[b0 * l..b0 * l + covered], "blocks {b0}..{b1}");
            assert!(touched <= r.stream_bytes() as usize);
        }
    }

    #[test]
    fn stream_bytes_invert_to_plain_serialization() {
        for (n, eb) in [(777usize, 1e-2), (32_768, 1e-4), (100_001, 1e-3)] {
            let data = wave(n);
            let c = fast::compress(&data, eb, CuszpConfig::default());
            let plain = c.to_bytes();
            let bytes = frame(&data, eb, DEFAULT_CHUNK_BLOCKS, None);
            let r = HybridRef::parse(&bytes).unwrap();
            let mut back = Vec::new();
            decode_stream_bytes(&r, &mut HybridScratch::new(), &mut back).unwrap();
            assert_eq!(back, plain, "n = {n}, eb = {eb}");
        }
    }

    #[test]
    fn compress_serialized_honors_hybrid_flag() {
        let data = wave(30_000);
        let plain_codec = Cuszp::new();
        let hybrid_codec = Cuszp::with_config(CuszpConfig {
            hybrid: true,
            ..Default::default()
        });
        let plain = plain_codec.compress_serialized(&data, ErrorBound::Rel(1e-4));
        let hy = hybrid_codec.compress_serialized(&data, ErrorBound::Rel(1e-4));
        assert!(plain.starts_with(b"CUSZP1"));
        assert!(hy.len() <= plain.len(), "hybrid must never lose");
        let a: Vec<f32> = plain_codec.decompress_serialized(&plain).unwrap();
        let b: Vec<f32> = hybrid_codec.decompress_serialized(&hy).unwrap();
        assert_eq!(a, b, "hybrid stage must be lossless");
        // A hybrid codec decodes plain frames too (whole-frame fallback).
        let c: Vec<f32> = hybrid_codec.decompress_serialized(&plain).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn parse_rejects_malformed_frames() {
        let data = wave(10_000);
        let good = frame(&data, 1e-3, DEFAULT_CHUNK_BLOCKS, None);
        assert!(HybridRef::parse(&good).is_ok());

        // Truncated header.
        assert_eq!(HybridRef::parse(&good[..10]), Err(FormatError::Truncated));
        // Bad magic.
        let mut b = good.clone();
        b[0] = b'X';
        assert_eq!(HybridRef::parse(&b), Err(FormatError::BadMagic));
        // Bad lorenzo flag.
        let mut b = good.clone();
        b[8] = 7;
        assert_eq!(
            HybridRef::parse(&b),
            Err(FormatError::Corrupt("bad lorenzo flag"))
        );
        // Bad dtype.
        let mut b = good.clone();
        b[9] = 9;
        assert_eq!(HybridRef::parse(&b), Err(FormatError::Corrupt("bad dtype")));
        // Bad block length.
        let mut b = good.clone();
        b[18] = 7;
        assert!(HybridRef::parse(&b).is_err());
        // Bad bound.
        let mut b = good.clone();
        b[22..30].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            HybridRef::parse(&b),
            Err(FormatError::Corrupt("bad error bound"))
        );
        // Zero chunk size.
        let mut b = good.clone();
        b[30..34].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            HybridRef::parse(&b),
            Err(FormatError::Corrupt("bad chunk size"))
        );
        // Chunk count inconsistent with geometry.
        let mut b = good.clone();
        b[34..38].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            HybridRef::parse(&b),
            Err(FormatError::Corrupt("chunk count vs geometry"))
        );
        // Unknown mode byte (4 = Huffman4 is valid as of this format
        // revision; 5 is the first unassigned byte).
        let mut b = good.clone();
        b[HYBRID_HEADER_BYTES] = 5;
        assert_eq!(HybridRef::parse(&b), Err(FormatError::UnknownHybridMode(5)));
        // Truncated payload.
        assert_eq!(
            HybridRef::parse(&good[..good.len() - 1]),
            Err(FormatError::Truncated)
        );
        // Trailing payload bytes.
        let mut b = good;
        b.push(0);
        assert_eq!(
            HybridRef::parse(&b),
            Err(FormatError::Corrupt("trailing bytes"))
        );
    }

    /// Hand-build a frame with arbitrary header geometry and table
    /// entries — the attacker's view of the wire format.
    fn raw_frame(
        num_elements: u64,
        block_len: u32,
        chunk_blocks: u32,
        entries: &[(u8, u32, u32)],
        payload: &[u8],
    ) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(&HYBRID_MAGIC);
        b.push(0); // lorenzo
        b.push(0); // f32
        b.extend_from_slice(&num_elements.to_le_bytes());
        b.extend_from_slice(&block_len.to_le_bytes());
        b.extend_from_slice(&1e-3f64.to_le_bytes());
        b.extend_from_slice(&chunk_blocks.to_le_bytes());
        b.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for &(mode, comp_len, raw_len) in entries {
            b.push(mode);
            b.extend_from_slice(&comp_len.to_le_bytes());
            b.extend_from_slice(&raw_len.to_le_bytes());
        }
        b.extend_from_slice(payload);
        b
    }

    #[test]
    fn tiny_frame_cannot_claim_huge_chunk_geometry() {
        // 48 bytes claiming u32::MAX blocks per chunk and a 4 GiB raw
        // chunk behind a single stored byte: the chunk_blocks cap must
        // reject it at parse, before any decode path can allocate.
        let n = u64::from(u32::MAX) * 32; // num_blocks = u32::MAX, 1 chunk
        let b = raw_frame(n, 32, u32::MAX, &[(1, 1, u32::MAX)], &[0]);
        assert_eq!(b.len(), 48);
        assert_eq!(
            HybridRef::parse(&b),
            Err(FormatError::Corrupt("chunk size exceeds limit"))
        );
    }

    #[test]
    fn raw_len_is_bounded_by_actual_chunk_blocks() {
        // One real block (n = 32, L = 32) in a nominal 256-block chunk:
        // raw_len must honor the actual block count (≤ 1 · (1 + 256)),
        // not the nominal worst case (256 · 257) the old bound allowed.
        let b = raw_frame(32, 32, 256, &[(1, 1, 10_000)], &[0]);
        assert_eq!(
            HybridRef::parse(&b),
            Err(FormatError::Corrupt("chunk raw length out of range"))
        );
    }

    #[test]
    fn empty_coded_chunks_rejected() {
        let b = raw_frame(32, 32, 256, &[(2, 0, 1)], &[]);
        assert_eq!(
            HybridRef::parse(&b),
            Err(FormatError::Corrupt("coded chunk not smaller than raw"))
        );
    }

    #[test]
    fn huffman_chunks_below_their_headers_rejected() {
        // L = 8 makes per-block worst-case raw large enough that a
        // sub-header comp_len still passes the smaller-than-raw check —
        // the dedicated header floors must catch it.
        let b = raw_frame(1600, 8, 256, &[(3, 100, 250)], &[0u8; 100]);
        assert_eq!(
            HybridRef::parse(&b),
            Err(FormatError::Corrupt("huffman chunk below table size"))
        );
        let b = raw_frame(1600, 8, 256, &[(4, 140, 250)], &[0u8; 140]);
        assert_eq!(
            HybridRef::parse(&b),
            Err(FormatError::Corrupt("huffman4 chunk below header size"))
        );
    }

    #[test]
    fn bounded_decompress_rejects_oversize_claims_before_allocating() {
        // A parse-clean constant frame legitimately claiming 2^25
        // elements from ~48 physical bytes (all-zero blocks): the
        // caller's element cap must stop it with a typed error.
        let cb = MAX_CHUNK_BLOCKS as u32;
        let n = u64::from(cb) * 32;
        let b = raw_frame(n, 32, cb, &[(1, 1, cb)], &[0]);
        let r = HybridRef::parse(&b).expect("internally consistent");
        assert_eq!(r.num_elements, n);
        let err = Cuszp::new()
            .decompress_serialized_bounded::<f32>(&b, 1000)
            .expect_err("claim exceeds cap");
        assert_eq!(
            err,
            FormatError::LimitExceeded {
                claimed: n,
                limit: 1000
            }
        );
        // The plain CUSZP1 branch honors the same cap.
        let plain = Cuszp::new().compress_serialized(&wave(100), ErrorBound::Abs(1e-3));
        let err = Cuszp::new()
            .decompress_serialized_bounded::<f32>(&plain, 99)
            .expect_err("plain claim exceeds cap");
        assert_eq!(
            err,
            FormatError::LimitExceeded {
                claimed: 100,
                limit: 99
            }
        );
        // At or under the cap both paths decode normally.
        let ok: Vec<f32> = Cuszp::new()
            .decompress_serialized_bounded(&plain, 100)
            .unwrap();
        assert_eq!(ok.len(), 100);
    }

    #[test]
    fn corrupt_chunk_contents_yield_typed_errors() {
        // Constant-mode chunk whose implied stream violates Eq 2: flip a
        // passthrough chunk to "constant" so it decodes to repeated
        // bytes that cannot satisfy the chunk's own accounting.
        let data = wave(10_000);
        let mut b = frame(&data, 1e-1, DEFAULT_CHUNK_BLOCKS, Some(Mode::Pass));
        let e = HYBRID_HEADER_BYTES;
        b[e] = Mode::Constant.to_byte();
        let comp_len = u32::from_le_bytes(b[e + 1..e + 5].try_into().unwrap());
        b[e + 1..e + 5].copy_from_slice(&1u32.to_le_bytes());
        // Drop the now-surplus payload bytes of chunk 0.
        let payload_at = {
            let bytes = frame(&data, 1e-1, DEFAULT_CHUNK_BLOCKS, Some(Mode::Pass));
            let r0 = HybridRef::parse(&bytes).unwrap();
            HYBRID_HEADER_BYTES + r0.num_chunks() * TABLE_ENTRY_BYTES
        };
        b.drain(payload_at + 1..payload_at + comp_len as usize);
        let r = HybridRef::parse(&b).expect("structurally fine");
        let mut out = vec![0f32; data.len()];
        let err = decode_into(&r, &mut HybridScratch::new(), &mut Scratch::new(), &mut out)
            .expect_err("inconsistent chunk must not decode");
        assert!(
            matches!(err, FormatError::Corrupt(_) | FormatError::Entropy(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn mode_histogram_reports_choices() {
        // All-zero data quantizes to all-zero blocks: F = 0 everywhere,
        // so every chunk's raw bytes are constant and flush to one byte.
        let data = vec![0.0f32; 100_000];
        let bytes = frame(&data, 1e-3, DEFAULT_CHUNK_BLOCKS, None);
        let r = HybridRef::parse(&bytes).unwrap();
        let h = r.mode_histogram();
        assert_eq!(h.iter().sum::<usize>(), r.num_chunks());
        assert!(
            h[Mode::Constant.to_byte() as usize] > 0,
            "all-zero blocks flush, got {h:?}"
        );
    }
}
