//! # cuszp-service — a multi-tenant, zero-allocation compression service
//!
//! A TCP front-end over the cuSZp host codec: clients connect, declare a
//! tenant configuration (dtype, error bound, payload cap) in one
//! handshake, then stream compress/decompress requests as
//! length-prefixed frames. Responses carry single-chunk `CUSZPCH1`
//! containers, so anything the service emits is directly consumable by
//! [`cuszp_core::chunk_ref_iter`] or storable on disk. Tenants that set
//! the hello's hybrid flag ([`protocol::HELLO_FLAG_HYBRID`]) opt into
//! the `CUSZPHY1` entropy second stage: compress responses become raw
//! hybrid frames whenever the stage wins, and decompress requests may
//! carry either format.
//!
//! The design goals, in order:
//!
//! 1. **Zero steady-state allocations.** Every connection owns a
//!    [`Scratch`] arena plus staging buffers, all pre-warmed at
//!    handshake time to the tenant's declared payload cap
//!    ([`Scratch::warm_for`] / [`cuszp_core::fast::max_stream_bytes`]).
//!    The bundle travels to a codec worker *by value* through an
//!    array-backed bounded channel and comes back the same way — after
//!    the first request, a connection's request loop performs **no heap
//!    operations** (proven by `tests/zero_alloc.rs`).
//! 2. **Bounded admission.** Requests are admitted to a shared
//!    [`WorkerPool`] via [`Submitter::try_submit`]; a full queue yields
//!    an immediate `BUSY` reply, never a stalled client. The queue bound
//!    is the only admission policy — there is no hidden buffering.
//! 3. **Honest overload and shutdown.** [`Server::shutdown`] stops
//!    accepting, half-closes live connections so in-flight requests
//!    drain and their responses are delivered, then joins the pool.
//!
//! Live counters — request counts, socket and codec byte totals, the
//! achieved compression ratio, and a p50/p99 service-latency histogram —
//! are exported in Prometheus-style plain text over the in-band
//! `M` (metrics) op. See `docs/SERVICE.md` for the operator guide and
//! the normative wire-format description.
//!
//! ```no_run
//! use cuszp_service::{Client, ServiceConfig, Server, Tenant};
//! use cuszp_core::{DType, ErrorBound};
//!
//! let server = Server::start(ServiceConfig::default()).unwrap();
//! let tenant = Tenant {
//!     tenant_id: 1,
//!     dtype: DType::F32,
//!     bound: ErrorBound::Abs(1e-2),
//!     max_payload: 1 << 20,
//!     hybrid: false,
//! };
//! let mut client = Client::connect(server.addr(), tenant).unwrap();
//! let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.02).sin()).collect();
//! let container = client.compress_f32(&data).unwrap().to_vec();
//! let mut restored = Vec::new();
//! client.decompress_f32(&container, &mut restored).unwrap();
//! assert_eq!(restored.len(), data.len());
//! server.shutdown();
//! ```

#![deny(missing_docs)]

pub mod client;
pub mod protocol;

pub use client::{Client, ServiceError};
pub use protocol::Tenant;

use cuszp_core::fast;
use cuszp_core::hybrid::{self, HybridScratch, DEFAULT_CHUNK_BLOCKS, HYBRID_MAGIC};
use cuszp_core::{chunk_ref_iter, CuszpConfig, DType, ErrorBound, FloatData, Scratch};
use cuszp_pipeline::{ServiceMetrics, Submitter, WorkerPool};
use protocol::*;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; use port `0` to let the OS pick (read it back from
    /// [`Server::addr`]).
    pub addr: String,
    /// Codec worker threads draining the shared admission queue.
    pub workers: usize,
    /// Jobs that may wait *queued* beyond the ones being processed;
    /// `0` makes admission a rendezvous (a request is admitted only when
    /// a worker is free right now). Once the bound is hit, further
    /// requests get `BUSY`.
    pub queue_depth: usize,
    /// Server-wide cap on a connection's raw payload size; tenant asks
    /// are clamped to this.
    pub max_payload: u32,
    /// Codec configuration applied to every compress request.
    pub codec: CuszpConfig,
    /// Artificial minimum per-job service time, applied inside the
    /// worker. `ZERO` (the default) for production; nonzero makes
    /// overload deterministic for tests and lets the load generator
    /// emulate slower codecs.
    pub service_floor: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 2,
            max_payload: 16 << 20,
            codec: CuszpConfig::default(),
            service_floor: Duration::ZERO,
        }
    }
}

/// Little-endian wire conversion for the two element types the codec
/// supports. Kept crate-private: the public API speaks `f32`/`f64`.
pub(crate) trait WireFloat: FloatData {
    /// Element size on the wire, in bytes.
    const WIRE_SIZE: usize;
    /// Read one element from the first `WIRE_SIZE` bytes.
    fn read_le(b: &[u8]) -> Self;
    /// Append this element's little-endian bytes.
    fn write_le(self, out: &mut Vec<u8>);
}

impl WireFloat for f32 {
    const WIRE_SIZE: usize = 4;
    fn read_le(b: &[u8]) -> Self {
        f32::from_le_bytes(b[..4].try_into().unwrap())
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl WireFloat for f64 {
    const WIRE_SIZE: usize = 8;
    fn read_le(b: &[u8]) -> Self {
        f64::from_le_bytes(b[..8].try_into().unwrap())
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

/// A connection's session arena: every buffer a request needs, owned as
/// one bundle so the handler can move it to a codec worker and get it
/// back without copies or allocations. Boxed so the move through the
/// job channel is one pointer, not a memcpy of the whole struct.
struct ConnBufs {
    tenant: Tenant,
    codec: CuszpConfig,
    floor: Duration,
    /// Request op being processed (`OP_COMPRESS`/`OP_DECOMPRESS`).
    op: u8,
    /// Raw request payload as read off the socket.
    input: Vec<u8>,
    /// Typed staging for the tenant's dtype (only one is ever used).
    f32s: Vec<f32>,
    f64s: Vec<f64>,
    /// Response payload: a `CUSZP1` frame or raw `CUSZPHY1` hybrid frame
    /// (compress) or raw LE bytes (decompress).
    out: Vec<u8>,
    /// Hybrid tenants' first-stage staging: the plain `CUSZP1` frame the
    /// entropy stage re-encodes from (and the fallback response when the
    /// stage does not win).
    stage: Vec<u8>,
    /// Hybrid chunk staging, warmed alongside `scratch`.
    hs: HybridScratch,
    scratch: Scratch,
    /// Result of processing: a response `STATUS_*`.
    status: u8,
    /// Error message when `status == STATUS_ERR`.
    err: &'static str,
    /// Raw-side byte count of this request, for the codec-ratio metrics.
    raw_len: u64,
}

impl ConnBufs {
    fn new(tenant: Tenant, codec: CuszpConfig, floor: Duration) -> Box<ConnBufs> {
        let mut b = Box::new(ConnBufs {
            tenant,
            codec,
            floor,
            op: 0,
            input: Vec::new(),
            f32s: Vec::new(),
            f64s: Vec::new(),
            out: Vec::new(),
            stage: Vec::new(),
            hs: HybridScratch::new(),
            scratch: Scratch::new(),
            status: STATUS_OK,
            err: "",
            raw_len: 0,
        });
        b.warm();
        b
    }

    /// Pre-size every buffer for the tenant's declared payload cap, so
    /// the first request — and all that follow — run allocation-free.
    fn warm(&mut self) {
        let cap = self.tenant.max_payload as usize;
        let elems = cap / self.tenant.dtype.size();
        self.input.reserve(cap);
        let (stream_cap, frame_cap) = match self.tenant.dtype {
            DType::F32 => {
                self.f32s.reserve(elems);
                self.scratch.warm_for::<f32>(elems, self.codec);
                if self.tenant.hybrid {
                    self.hs
                        .warm_for::<f32>(elems, self.codec, hybrid::AUTO_CHUNK_MAX_BLOCKS);
                }
                (
                    fast::max_stream_bytes::<f32>(elems, self.codec),
                    hybrid::max_frame_bytes::<f32>(elems, self.codec, DEFAULT_CHUNK_BLOCKS),
                )
            }
            DType::F64 => {
                self.f64s.reserve(elems);
                self.scratch.warm_for::<f64>(elems, self.codec);
                if self.tenant.hybrid {
                    self.hs
                        .warm_for::<f64>(elems, self.codec, hybrid::AUTO_CHUNK_MAX_BLOCKS);
                }
                (
                    fast::max_stream_bytes::<f64>(elems, self.codec),
                    hybrid::max_frame_bytes::<f64>(elems, self.codec, DEFAULT_CHUNK_BLOCKS),
                )
            }
        };
        // `out` carries a compressed frame (plain or hybrid) or decoded
        // raw bytes; hybrid tenants stage the plain frame separately.
        let out_cap = if self.tenant.hybrid {
            self.stage.reserve(stream_cap);
            stream_cap.max(frame_cap)
        } else {
            stream_cap
        };
        self.out.reserve(out_cap.max(cap));
    }

    fn fail(&mut self, msg: &'static str) {
        self.status = STATUS_ERR;
        self.err = msg;
    }
}

/// A unit of admitted work: the connection's buffer bundle plus the
/// channel that returns it. Both ends are array-backed, so neither the
/// submit nor the reply allocates.
struct Job {
    bufs: Box<ConnBufs>,
    reply: SyncSender<Box<ConnBufs>>,
}

/// Decode `input` (raw LE elements) into `floats`.
fn decode_le<T: WireFloat>(input: &[u8], floats: &mut Vec<T>) {
    floats.clear();
    for chunk in input.chunks_exact(T::WIRE_SIZE) {
        floats.push(T::read_le(chunk));
    }
}

/// Compress the request in `b` for element type `T`; `floats` is the
/// matching typed staging buffer (a disjoint borrow of the same bundle).
/// Hybrid tenants run the `CUSZPHY1` second stage over the plain frame
/// staged in `stage`; when the stage does not shrink the frame, the
/// plain frame is the response (and ships container-wrapped as usual).
#[allow(clippy::too_many_arguments)]
fn process_compress_typed<T: WireFloat>(
    input: &[u8],
    floats: &mut Vec<T>,
    scratch: &mut Scratch,
    stage: &mut Vec<u8>,
    hs: &mut HybridScratch,
    out: &mut Vec<u8>,
    bound: ErrorBound,
    codec: CuszpConfig,
    hybrid_stage: bool,
) -> Result<(), &'static str> {
    if !input.len().is_multiple_of(T::WIRE_SIZE) {
        return Err("compress payload is not a whole number of elements");
    }
    decode_le(input, floats);
    let eb = match bound {
        ErrorBound::Abs(d) => d,
        ErrorBound::Rel(l) => {
            let eb = l * cuszp_core::value_range(floats);
            if !eb.is_finite() || eb <= 0.0 {
                return Err("REL bound cannot resolve: empty, constant, or non-finite data");
            }
            eb
        }
    };
    if hybrid_stage {
        let r = fast::compress_into(scratch, floats, eb, codec, stage);
        let level = cuszp_core::simd::resolve_level(codec.simd);
        hybrid::encode_at(&r, hybrid::auto_chunk_blocks(&r), level, hs, out);
        if out.len() >= stage.len() {
            out.clear();
            out.extend_from_slice(stage);
        }
    } else {
        fast::compress_into(scratch, floats, eb, codec, out);
    }
    Ok(())
}

/// Decompress the request in `b` (one `CUSZPCH1` container, or — for
/// hybrid tenants — a raw `CUSZPHY1` frame) for element type `T`,
/// leaving raw LE bytes in `out`.
fn process_decompress_typed<T: WireFloat>(
    input: &[u8],
    floats: &mut Vec<T>,
    scratch: &mut Scratch,
    hs: &mut HybridScratch,
    out: &mut Vec<u8>,
    cap: u32,
    hybrid_stage: bool,
) -> Result<(), &'static str> {
    if hybrid_stage && input.starts_with(&HYBRID_MAGIC) {
        let r = hybrid::HybridRef::parse(input).map_err(|_| "malformed CUSZPHY1 frame")?;
        if r.dtype != T::DTYPE {
            return Err("hybrid frame dtype does not match tenant dtype");
        }
        let total = r.num_elements as usize;
        if total
            .checked_mul(T::WIRE_SIZE)
            .is_none_or(|b| b as u64 > cap as u64)
        {
            return Err("decoded size exceeds tenant payload cap");
        }
        floats.clear();
        floats.resize(total, T::from_f64(0.0));
        hybrid::decode_into(&r, hs, scratch, floats).map_err(|_| "corrupt CUSZPHY1 chunk")?;
        out.clear();
        for &v in floats.iter() {
            v.write_le(out);
        }
        return Ok(());
    }
    // Pass 1: framing + totals. `chunk_ref_iter` validates the container
    // table up front; per-chunk headers are validated as we walk.
    let mut total = 0usize;
    for chunk in chunk_ref_iter(input).map_err(|_| "malformed CUSZPCH1 container")? {
        let chunk = chunk.map_err(|_| "malformed chunk in container")?;
        if chunk.dtype != T::DTYPE {
            return Err("container dtype does not match tenant dtype");
        }
        total += chunk.num_elements as usize;
    }
    if total
        .checked_mul(T::WIRE_SIZE)
        .is_none_or(|b| b as u64 > cap as u64)
    {
        return Err("decoded size exceeds tenant payload cap");
    }
    // Pass 2: decode each chunk into its slice of the staging buffer.
    floats.clear();
    floats.resize(total, T::from_f64(0.0));
    let mut at = 0usize;
    for chunk in chunk_ref_iter(input).expect("validated in pass 1") {
        let chunk = chunk.expect("validated in pass 1");
        let n = chunk.num_elements as usize;
        fast::decompress_into(chunk, scratch, &mut floats[at..at + n]);
        at += n;
    }
    out.clear();
    for &v in floats.iter() {
        v.write_le(out);
    }
    Ok(())
}

/// Run one admitted job in place: dispatch on (op, dtype), leave the
/// result status and response payload in the bundle.
fn process(b: &mut ConnBufs) {
    b.status = STATUS_OK;
    b.err = "";
    b.raw_len = 0;
    let result = match (b.op, b.tenant.dtype) {
        (OP_COMPRESS, DType::F32) => {
            b.raw_len = b.input.len() as u64;
            process_compress_typed(
                &b.input,
                &mut b.f32s,
                &mut b.scratch,
                &mut b.stage,
                &mut b.hs,
                &mut b.out,
                b.tenant.bound,
                b.codec,
                b.tenant.hybrid,
            )
        }
        (OP_COMPRESS, DType::F64) => {
            b.raw_len = b.input.len() as u64;
            process_compress_typed(
                &b.input,
                &mut b.f64s,
                &mut b.scratch,
                &mut b.stage,
                &mut b.hs,
                &mut b.out,
                b.tenant.bound,
                b.codec,
                b.tenant.hybrid,
            )
        }
        (OP_DECOMPRESS, DType::F32) => process_decompress_typed::<f32>(
            &b.input,
            &mut b.f32s,
            &mut b.scratch,
            &mut b.hs,
            &mut b.out,
            b.tenant.max_payload,
            b.tenant.hybrid,
        ),
        (OP_DECOMPRESS, DType::F64) => process_decompress_typed::<f64>(
            &b.input,
            &mut b.f64s,
            &mut b.scratch,
            &mut b.hs,
            &mut b.out,
            b.tenant.max_payload,
            b.tenant.hybrid,
        ),
        _ => Err("internal: unknown op reached worker"),
    };
    if let Err(msg) = result {
        b.fail(msg);
    }
    if !b.floor.is_zero() {
        std::thread::sleep(b.floor);
    }
}

/// A running compression service. Dropping the server shuts it down;
/// prefer calling [`Server::shutdown`] explicitly to observe the drain.
pub struct Server {
    addr: SocketAddr,
    metrics: Arc<ServiceMetrics>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<JoinHandle<()>>,
    pool: Option<WorkerPool<Job, u64>>,
}

impl Server {
    /// Bind, spawn the codec worker pool and the accept loop, and return
    /// a handle. The server is ready for connections when this returns.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let metrics = Arc::new(ServiceMetrics::new());
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

        let pool: WorkerPool<Job, u64> = WorkerPool::new(
            cfg.workers.max(1),
            cfg.queue_depth,
            |_, src: cuszp_pipeline::JobSource<Job>| {
                let mut processed = 0u64;
                while let Some(mut job) = src.next() {
                    process(&mut job.bufs);
                    processed += 1;
                    // The handler is guaranteed to be blocked on the
                    // matching recv; a send can only fail if the whole
                    // connection thread died, in which case the bundle
                    // is simply dropped.
                    let _ = job.reply.send(job.bufs);
                }
                processed
            },
        );
        let submitter = pool.handle();

        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || accept_loop(listener, stop, conns, metrics, submitter, cfg))
        };

        Ok(Server {
            addr,
            metrics,
            stop,
            conns,
            accept: Some(accept),
            pool: Some(pool),
        })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared handle to the live metrics (also scrapeable in-band via
    /// the `M` op).
    pub fn metrics(&self) -> Arc<ServiceMetrics> {
        Arc::clone(&self.metrics)
    }

    fn shutdown_impl(&mut self) -> u64 {
        // 1. Stop admitting new connections.
        self.stop.store(true, Ordering::SeqCst);
        // 2. Half-close live connections: handlers finish the request
        //    they are on (its response is still written — the write side
        //    stays open), then see EOF and exit.
        for c in self.conns.lock().expect("conn registry").iter() {
            let _ = c.shutdown(Shutdown::Read);
        }
        // 3. The accept thread joins every handler; handlers drop their
        //    submitter clones as they exit.
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // 4. With all submitters gone, the pool drains and its workers
        //    exit.
        match self.pool.take() {
            Some(pool) => pool.close().into_iter().sum(),
            None => 0,
        }
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests
    /// (their responses are delivered), join every thread. Returns the
    /// total number of jobs the codec workers processed over the
    /// server's lifetime.
    pub fn shutdown(mut self) -> u64 {
        self.shutdown_impl()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() || self.pool.is_some() {
            self.shutdown_impl();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    metrics: Arc<ServiceMetrics>,
    submitter: Submitter<Job>,
    cfg: ServiceConfig,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                // Register under the lock, re-checking the stop flag
                // inside it: `shutdown` sets the flag *then* walks the
                // registry, so a connection is either registered (and
                // will be half-closed) or refused — never orphaned.
                {
                    let mut reg = conns.lock().expect("conn registry");
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(clone) = stream.try_clone() {
                        reg.push(clone);
                    }
                }
                let submitter = submitter.clone();
                let metrics = Arc::clone(&metrics);
                let server_cap = cfg.max_payload;
                let codec = cfg.codec;
                let floor = cfg.service_floor;
                handlers.push(std::thread::spawn(move || {
                    handle_conn(stream, submitter, metrics, server_cap, codec, floor);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// One connection's lifetime: handshake, then the request loop. All
/// steady-state I/O reuses the session arena; the only allocations
/// happen during the handshake warm-up.
fn handle_conn(
    mut stream: TcpStream,
    submitter: Submitter<Job>,
    metrics: Arc<ServiceMetrics>,
    server_cap: u32,
    codec: CuszpConfig,
    floor: Duration,
) {
    metrics.total_connections.fetch_add(1, Ordering::Relaxed);
    metrics.active_connections.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);

    let result = run_session(&mut stream, submitter, &metrics, server_cap, codec, floor);
    let _ = result; // all exits are normal teardown: EOF, error reply, or shutdown
    metrics.active_connections.fetch_sub(1, Ordering::Relaxed);
}

fn run_session(
    stream: &mut TcpStream,
    submitter: Submitter<Job>,
    metrics: &ServiceMetrics,
    server_cap: u32,
    codec: CuszpConfig,
    floor: Duration,
) -> std::io::Result<()> {
    // --- Handshake ---------------------------------------------------
    let mut hello = [0u8; HANDSHAKE_BYTES];
    stream.read_exact(&mut hello)?;
    let tenant = match Tenant::decode_hello(&hello) {
        Ok(t) => t,
        Err(code) => {
            stream.write_all(&encode_handshake_reply(STATUS_ERR, code, 0))?;
            metrics.errors.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
    };
    let effective = tenant.max_payload.min(server_cap);
    let tenant = Tenant {
        max_payload: effective,
        ..tenant
    };
    stream.write_all(&encode_handshake_reply(STATUS_OK, 0, effective))?;

    // --- Session arena (the connection's entire allocation budget) ---
    let mut bufs = Some(ConnBufs::new(tenant, codec, floor));
    let (reply_tx, reply_rx) = sync_channel::<Box<ConnBufs>>(1);
    let mut metrics_text = String::with_capacity(8192);

    // --- Request loop ------------------------------------------------
    loop {
        let mut hdr = [0u8; REQUEST_HEADER_BYTES];
        if stream.read_exact(&mut hdr).is_err() {
            return Ok(()); // client EOF or shutdown half-close
        }
        let op = hdr[0];
        let len = u32::from_le_bytes(hdr[1..5].try_into().unwrap());
        let t0 = Instant::now();

        match op {
            OP_METRICS if len == 0 => {
                metrics_text.clear();
                metrics.render_text(&mut metrics_text);
                let body = metrics_text.as_bytes();
                stream.write_all(&encode_response_header(STATUS_OK, body.len() as u32))?;
                stream.write_all(body)?;
                metrics
                    .bytes_in
                    .fetch_add(REQUEST_HEADER_BYTES as u64, Ordering::Relaxed);
                metrics.bytes_out.fetch_add(
                    (RESPONSE_HEADER_BYTES + body.len()) as u64,
                    Ordering::Relaxed,
                );
            }
            OP_COMPRESS | OP_DECOMPRESS => {
                if len as u64 > tenant.max_payload as u64 {
                    // The oversized payload was never read — the stream
                    // position is untrusted, so reply and close.
                    reply_err(stream, metrics, "request exceeds tenant payload cap")?;
                    return Ok(());
                }
                let mut b = bufs.take().expect("session bundle present");
                b.input.clear();
                b.input.resize(len as usize, 0);
                if stream.read_exact(&mut b.input).is_err() {
                    return Ok(());
                }
                b.op = op;
                metrics.bytes_in.fetch_add(
                    (REQUEST_HEADER_BYTES + len as usize) as u64,
                    Ordering::Relaxed,
                );

                match submitter.try_submit(Job {
                    bufs: b,
                    reply: reply_tx.clone(),
                }) {
                    Ok(()) => {
                        let b = reply_rx.recv().expect("worker returns the bundle");
                        write_codec_response(stream, metrics, &b, op, len)?;
                        metrics.latency.record(t0.elapsed());
                        bufs = Some(b);
                    }
                    Err(job) => {
                        bufs = Some(job.bufs);
                        stream.write_all(&encode_response_header(STATUS_BUSY, 0))?;
                        metrics.busy_rejections.fetch_add(1, Ordering::Relaxed);
                        metrics
                            .bytes_out
                            .fetch_add(RESPONSE_HEADER_BYTES as u64, Ordering::Relaxed);
                    }
                }
            }
            _ => {
                // Unknown op: the `len` field is untrusted — reply and
                // close rather than resynchronize.
                reply_err(stream, metrics, "unknown request op")?;
                return Ok(());
            }
        }
    }
}

/// Write an `ERR` response carrying a static message.
fn reply_err(
    stream: &mut TcpStream,
    metrics: &ServiceMetrics,
    msg: &'static str,
) -> std::io::Result<()> {
    metrics.errors.fetch_add(1, Ordering::Relaxed);
    stream.write_all(&encode_response_header(STATUS_ERR, msg.len() as u32))?;
    stream.write_all(msg.as_bytes())?;
    metrics.bytes_out.fetch_add(
        (RESPONSE_HEADER_BYTES + msg.len()) as u64,
        Ordering::Relaxed,
    );
    Ok(())
}

/// Write the response for a processed codec job and account for it.
/// `req_len` is the request payload length (the stream-side size of a
/// decompress request).
fn write_codec_response(
    stream: &mut TcpStream,
    metrics: &ServiceMetrics,
    b: &ConnBufs,
    op: u8,
    req_len: u32,
) -> std::io::Result<()> {
    match b.status {
        STATUS_OK if op == OP_COMPRESS => {
            // Response payload: a single-chunk CUSZPCH1 container,
            // written as header + frame without materializing it — or,
            // when the hybrid second stage won, the raw self-framing
            // CUSZPHY1 frame.
            let hybrid_frame = b.out.starts_with(&HYBRID_MAGIC);
            let total = if hybrid_frame {
                b.out.len()
            } else {
                single_chunk_container_len(b.out.len())
            };
            stream.write_all(&encode_response_header(STATUS_OK, total as u32))?;
            if !hybrid_frame {
                stream.write_all(&single_chunk_container_header(b.out.len() as u64))?;
            }
            stream.write_all(&b.out)?;
            metrics.compress_requests.fetch_add(1, Ordering::Relaxed);
            metrics.raw_bytes.fetch_add(b.raw_len, Ordering::Relaxed);
            metrics
                .stream_bytes
                .fetch_add(total as u64, Ordering::Relaxed);
            metrics
                .bytes_out
                .fetch_add((RESPONSE_HEADER_BYTES + total) as u64, Ordering::Relaxed);
        }
        STATUS_OK => {
            // Decompress: payload is the raw little-endian elements.
            stream.write_all(&encode_response_header(STATUS_OK, b.out.len() as u32))?;
            stream.write_all(&b.out)?;
            metrics.decompress_requests.fetch_add(1, Ordering::Relaxed);
            metrics
                .raw_bytes
                .fetch_add(b.out.len() as u64, Ordering::Relaxed);
            metrics
                .stream_bytes
                .fetch_add(req_len as u64, Ordering::Relaxed);
            metrics.bytes_out.fetch_add(
                (RESPONSE_HEADER_BYTES + b.out.len()) as u64,
                Ordering::Relaxed,
            );
        }
        _ => {
            stream.write_all(&encode_response_header(STATUS_ERR, b.err.len() as u32))?;
            stream.write_all(b.err.as_bytes())?;
            metrics.errors.fetch_add(1, Ordering::Relaxed);
            metrics.bytes_out.fetch_add(
                (RESPONSE_HEADER_BYTES + b.err.len()) as u64,
                Ordering::Relaxed,
            );
        }
    }
    Ok(())
}
