//! Integration checks on the simulated cost model: the relationships the
//! paper's evaluation depends on must hold structurally, not just in one
//! tuned configuration.

use baselines::common::CuszpAdapter;
use baselines::{Compressor, CuszLike, CuszxLike};
use cuszp_core::ErrorBound;
use datasets::{generate_subset, DatasetId, Scale};
use gpu_sim::{DeviceSpec, Gpu};

fn field() -> datasets::Field {
    generate_subset(DatasetId::Hurricane, Scale::Tiny, 1).remove(0)
}

#[test]
fn single_kernel_end_to_end_equals_kernel_throughput() {
    // Paper §2.2: "in single-kernel GPU compressor design, end-to-end
    // throughput is the same as kernel throughput."
    let f = field();
    let eb = ErrorBound::Rel(1e-2).absolute(f.value_range() as f64);
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.h2d(&f.data);
    gpu.reset_timeline();
    let _ = CuszpAdapter::new().compress(&mut gpu, &input, &f.shape, eb);
    let e2e = gpu.end_to_end_throughput_gbps(f.size_bytes());
    let kernel = gpu.kernel_throughput_gbps(f.size_bytes());
    assert!((e2e - kernel).abs() / kernel < 1e-9);
}

#[test]
fn multi_kernel_pipelines_have_kernel_faster_than_end_to_end() {
    let f = field();
    let eb = ErrorBound::Rel(1e-2).absolute(f.value_range() as f64);
    for comp in [
        Box::new(CuszLike::new()) as Box<dyn Compressor>,
        Box::new(CuszxLike::new()),
    ] {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(&f.data);
        gpu.reset_timeline();
        let _ = comp.compress(&mut gpu, &input, &f.shape, eb);
        let e2e = gpu.end_to_end_throughput_gbps(f.size_bytes());
        let kernel = gpu.kernel_throughput_gbps(f.size_bytes());
        assert!(
            kernel > 3.0 * e2e,
            "{}: kernel {kernel:.2} should dwarf e2e {e2e:.2}",
            comp.kind().name()
        );
    }
}

#[test]
fn breakdown_fractions_cover_the_window() {
    let f = field();
    let eb = ErrorBound::Rel(1e-2).absolute(f.value_range() as f64);
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.h2d(&f.data);
    gpu.reset_timeline();
    let _ = CuszLike::new().compress(&mut gpu, &input, &f.shape, eb);
    let b = gpu.breakdown();
    let sum = b.gpu_fraction() + b.cpu_fraction() + b.memcpy_fraction();
    assert!((sum - 1.0).abs() < 1e-9);
    assert!(b.gpu_fraction() < 0.5, "cuSZ GPU share must be small");
}

#[test]
fn faster_devices_give_faster_kernels() {
    let f = field();
    let eb = ErrorBound::Rel(1e-2).absolute(f.value_range() as f64);
    let mut results = Vec::new();
    for spec in [
        DeviceSpec::a100(),
        DeviceSpec::v100(),
        DeviceSpec::rtx3080(),
    ] {
        let mut gpu = Gpu::new(spec);
        let input = gpu.h2d(&f.data);
        gpu.reset_timeline();
        let _ = CuszpAdapter::new().compress(&mut gpu, &input, &f.shape, eb);
        results.push(gpu.kernel_throughput_gbps(f.size_bytes()));
    }
    assert!(
        results[0] > results[1] && results[1] > results[2],
        "{results:?}"
    );
}

#[test]
fn simulated_time_is_deterministic() {
    let f = field();
    let eb = ErrorBound::Rel(1e-2).absolute(f.value_range() as f64);
    let run = |workers: usize| -> f64 {
        let mut gpu = Gpu::new(DeviceSpec::a100()).with_workers(workers);
        let input = gpu.h2d(&f.data);
        gpu.reset_timeline();
        let _ = CuszpAdapter::new().compress(&mut gpu, &input, &f.shape, eb);
        gpu.timeline().total_time()
    };
    let t1 = run(1);
    let t4 = run(4);
    let again = run(1);
    assert_eq!(t1, again, "same config must give identical simulated time");
    // Worker count parallelizes the *simulation*, not the simulated device:
    // lookback spin counts can differ marginally, nothing else.
    assert!((t1 - t4).abs() / t1 < 0.02, "t1 {t1} vs t4 {t4}");
}

#[test]
fn sparse_snapshots_run_faster_than_dense_ones() {
    // The Fig 22 mechanism at the timing-model level.
    let shape = Scale::Tiny.shape(DatasetId::Rtm);
    let sparse = datasets::rtm::snapshot(300, &shape);
    let dense = datasets::rtm::snapshot(3200, &shape);
    let gbps = |f: &datasets::Field| -> f64 {
        let eb = ErrorBound::Rel(1e-2).absolute(f.value_range() as f64);
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(&f.data);
        gpu.reset_timeline();
        let _ = CuszpAdapter::new().compress(&mut gpu, &input, &f.shape, eb);
        gpu.end_to_end_throughput_gbps(f.size_bytes())
    };
    assert!(
        gbps(&sparse) > gbps(&dense),
        "sparse {} vs dense {}",
        gbps(&sparse),
        gbps(&dense)
    );
}
