//! Canonical Huffman coding for quantization codes — the cuSZ encoding
//! stage whose **CPU-side codebook construction** is the paper's headline
//! criticism of cuSZ's end-to-end performance (§1, Fig 14).

/// Build Huffman code lengths from symbol frequencies (package-free heap
/// construction). Returns one length per symbol; unused symbols get 0.
pub fn build_lengths(freq: &[u64]) -> Vec<u8> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Min-heap by weight (BinaryHeap is a max-heap).
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = freq.len();
    let used: Vec<usize> = (0..n).filter(|&s| freq[s] > 0).collect();
    let mut lengths = vec![0u8; n];
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Internal tree: parents of each node (leaves 0..n, internals appended).
    let mut parent = vec![usize::MAX; n];
    let mut heap = std::collections::BinaryHeap::new();
    for &s in &used {
        heap.push(Node {
            weight: freq[s],
            id: s,
        });
    }
    let mut weights: Vec<u64> = freq.to_vec();
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        let id = parent.len();
        parent.push(usize::MAX);
        weights.push(weights[a.id] + weights[b.id]);
        parent[a.id] = id;
        parent[b.id] = id;
        heap.push(Node {
            weight: weights[id],
            id,
        });
    }
    for &s in &used {
        let mut depth = 0u8;
        let mut node = s;
        while parent[node] != usize::MAX {
            node = parent[node];
            depth += 1;
        }
        lengths[s] = depth;
    }
    lengths
}

/// Canonical codebook: `(code, length)` per symbol, assigned in canonical
/// order (shorter lengths first, then symbol order). Codes are stored
/// MSB-first in `length` bits.
#[derive(Debug, Clone)]
pub struct Codebook {
    /// Code value per symbol (valid when length > 0).
    pub codes: Vec<u32>,
    /// Code length per symbol (0 ⇒ unused symbol).
    pub lengths: Vec<u8>,
    /// Largest code length.
    pub max_len: u8,
}

impl Codebook {
    /// Canonicalize a set of code lengths.
    pub fn from_lengths(lengths: &[u8]) -> Codebook {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        let mut codes = vec![0u32; lengths.len()];
        // Sort symbols by (length, symbol).
        let mut symbols: Vec<usize> = (0..lengths.len()).filter(|&s| lengths[s] > 0).collect();
        symbols.sort_by_key(|&s| (lengths[s], s));
        let mut code = 0u32;
        let mut prev_len = 0u8;
        for &s in &symbols {
            code <<= lengths[s] - prev_len;
            codes[s] = code;
            prev_len = lengths[s];
            code += 1;
        }
        Codebook {
            codes,
            lengths: lengths.to_vec(),
            max_len,
        }
    }

    /// Serialized ops a CPU spends building this codebook (for the timing
    /// model): heap construction plus canonicalization.
    pub fn build_cost_ops(num_symbols: usize) -> u64 {
        // ~n log n heap ops with a realistic constant, plus the fixed
        // driver/alloc overhead the reference incurs per codebook.
        let n = num_symbols as u64;
        n * 64 + 500_000
    }
}

/// Encode symbols into a bitstream (MSB-first per code). Returns the bit
/// length.
pub fn encode(symbols: &[u16], book: &Codebook, out: &mut Vec<u8>) -> usize {
    let mut bitpos = 0usize;
    for &s in symbols {
        let len = book.lengths[s as usize] as usize;
        debug_assert!(len > 0, "symbol {s} missing from codebook");
        let code = book.codes[s as usize];
        for k in (0..len).rev() {
            let bit = (code >> k) & 1;
            let byte = bitpos / 8;
            if byte >= out.len() {
                out.push(0);
            }
            if bit != 0 {
                out[byte] |= 1 << (7 - bitpos % 8);
            }
            bitpos += 1;
        }
    }
    bitpos
}

/// Decode `count` symbols from a bitstream using a canonical table walk
/// (first-code/first-symbol per length — O(max_len) per symbol).
pub fn decode(bits: &[u8], bit_len: usize, count: usize, book: &Codebook) -> Vec<u16> {
    // Canonical decoding tables.
    let max = book.max_len as usize;
    let mut first_code = vec![0u32; max + 2];
    let mut first_sym_idx = vec![0usize; max + 2];
    let mut symbols: Vec<usize> = (0..book.lengths.len())
        .filter(|&s| book.lengths[s] > 0)
        .collect();
    symbols.sort_by_key(|&s| (book.lengths[s], s));
    // Count per length.
    let mut count_per_len = vec![0usize; max + 1];
    for &s in &symbols {
        count_per_len[book.lengths[s] as usize] += 1;
    }
    let mut code = 0u32;
    let mut idx = 0usize;
    for len in 1..=max {
        code <<= 1;
        first_code[len] = code;
        first_sym_idx[len] = idx;
        code += count_per_len[len] as u32;
        idx += count_per_len[len];
    }

    let mut out = Vec::with_capacity(count);
    let mut pos = 0usize;
    for _ in 0..count {
        let mut code = 0u32;
        let mut len = 0usize;
        loop {
            debug_assert!(pos < bit_len, "bitstream exhausted");
            let bit = (bits[pos / 8] >> (7 - pos % 8)) & 1;
            pos += 1;
            code = (code << 1) | bit as u32;
            len += 1;
            let nc = count_per_len.get(len).copied().unwrap_or(0);
            if nc > 0 && code >= first_code[len] && code < first_code[len] + nc as u32 {
                let sym = symbols[first_sym_idx[len] + (code - first_code[len]) as usize];
                out.push(sym as u16);
                break;
            }
            debug_assert!(len <= max, "invalid code in stream");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u16], num_syms: usize) {
        let mut freq = vec![0u64; num_syms];
        for &s in symbols {
            freq[s as usize] += 1;
        }
        let lengths = build_lengths(&freq);
        let book = Codebook::from_lengths(&lengths);
        let mut bits = Vec::new();
        let bit_len = encode(symbols, &book, &mut bits);
        let back = decode(&bits, bit_len, symbols.len(), &book);
        assert_eq!(back, symbols);
    }

    #[test]
    fn simple_roundtrip() {
        roundtrip(&[1, 2, 3, 1, 1, 1, 2, 5, 1, 1], 8);
    }

    #[test]
    fn single_symbol_stream() {
        roundtrip(&[7; 100], 16);
        let mut freq = vec![0u64; 16];
        freq[7] = 100;
        let lengths = build_lengths(&freq);
        assert_eq!(lengths[7], 1);
        assert!(lengths.iter().enumerate().all(|(s, &l)| s == 7 || l == 0));
    }

    #[test]
    fn skewed_distribution_gets_short_codes() {
        let mut freq = vec![0u64; 1024];
        freq[512] = 1_000_000; // the "delta = 0" code dominates
        freq[511] = 1000;
        freq[513] = 1000;
        freq[100] = 1;
        let lengths = build_lengths(&freq);
        assert_eq!(lengths[512], 1, "dominant symbol must get 1 bit");
        assert!(lengths[100] >= lengths[511]);
    }

    #[test]
    fn kraft_inequality_holds() {
        let freq: Vec<u64> = (0..256).map(|i| (i * i + 1) as u64).collect();
        let lengths = build_lengths(&freq);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2.0f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft {kraft}");
        assert!(
            (kraft - 1.0).abs() < 1e-9,
            "full tree expected, kraft {kraft}"
        );
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freq: Vec<u64> = vec![5, 9, 12, 13, 16, 45];
        let lengths = build_lengths(&freq);
        let book = Codebook::from_lengths(&lengths);
        for a in 0..6 {
            for b in 0..6 {
                if a == b {
                    continue;
                }
                let (la, lb) = (book.lengths[a], book.lengths[b]);
                if la <= lb {
                    let prefix = book.codes[b] >> (lb - la);
                    assert_ne!(prefix, book.codes[a], "code {a} prefixes {b}");
                }
            }
        }
    }

    #[test]
    fn big_alphabet_roundtrip() {
        let symbols: Vec<u16> = (0..5000)
            .map(|i| {
                // Geometric-ish distribution centered at 512 (cuSZ codes).
                let j = (i * 2654435761usize) % 100;
                if j < 70 {
                    512
                } else if j < 85 {
                    511
                } else if j < 95 {
                    513
                } else {
                    (500 + (i % 25)) as u16
                }
            })
            .collect();
        roundtrip(&symbols, 1024);
    }

    #[test]
    fn empty_frequencies() {
        let lengths = build_lengths(&[0; 64]);
        assert!(lengths.iter().all(|&l| l == 0));
    }

    #[test]
    fn optimality_sanity_two_symbols() {
        let lengths = build_lengths(&[10, 1]);
        assert_eq!(lengths, vec![1, 1]);
    }

    #[test]
    fn build_cost_is_positive() {
        assert!(Codebook::build_cost_ops(1024) > 500_000);
    }
}
