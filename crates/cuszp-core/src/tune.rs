//! Tile-size autotuning for the host fast codec.
//!
//! [`crate::fast`] processes blocks in *tiles* — the residual scratch
//! covers one tile, so the tile size decides the phase-1 working set the
//! same way the paper's thread-block size decides how much shared memory
//! one GPU block touches. The right size is a cache property of the
//! running host, not of the algorithm: too small and the per-tile loop
//! overhead (plan scan, staging resize) dominates; too large and the
//! residual tile falls out of L2 and phase 1 re-fights DRAM for every
//! byte it just produced.
//!
//! Instead of a hard-coded constant, the tile is picked by a **one-shot
//! microbenchmark at first use**: each candidate size runs the real
//! phase-1 kernel ([`crate::fast`]'s plan + encode) over a synthetic
//! array a few times, best wall time wins, and the winner is cached per
//! `(dtype, SimdLevel)` for the life of the process (different tiers
//! have different arithmetic density, so their cache sweet spots can
//! differ). The probe costs well under a millisecond and runs off the
//! first compression's critical path only once.
//!
//! The tile size is a pure performance knob: output bytes are identical
//! for every tile size (pinned by the `tile_size_never_changes_output`
//! test in [`crate::fast`]), decode no longer tiles at all (the fused
//! block decoders write straight to the output array), and the
//! `CUSZP_TILE_ELEMS` environment variable overrides the probe for
//! benchmarking or for pinning deterministic behavior process-wide.

use crate::config::SimdLevel;
use crate::dtype::DType;
use std::sync::OnceLock;

/// The tile size used when probing is disabled (empty candidate corner
/// cases) and the seed the probe must beat: 8192 elements keeps the
/// `i64` residual tile at 64 KiB, a common L2-friendly footprint.
pub const DEFAULT_TILE_ELEMS: usize = 8192;

/// Candidate tile sizes, in elements. Powers of two from "a few blocks"
/// to "clearly past L2 for the i64 tile" — the probe exists to find the
/// knee between those regimes on the running host.
const CANDIDATES: [usize; 5] = [2048, 4096, 8192, 16384, 32768];

/// Clamp bounds for the `CUSZP_TILE_ELEMS` override: at least one
/// maximal block, at most a megabyte-scale tile (beyond which the tile
/// concept has stopped meaning anything).
const MIN_TILE: usize = 256;
const MAX_TILE: usize = 1 << 20;

/// The `CUSZP_TILE_ELEMS` override, read once per process. **Any**
/// invalid value — unparseable *or* outside `[MIN_TILE, MAX_TILE]` —
/// warns on stderr once and falls back to the microbenchmark probe, so
/// a typo'd override degrades to the detected tile rather than silently
/// pinning a clamped size nobody asked for (SERVICE.md documents this
/// knob's error behavior).
fn env_override() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let s = std::env::var("CUSZP_TILE_ELEMS").ok()?;
        if s.is_empty() {
            return None;
        }
        match s.parse::<usize>() {
            Ok(v) if (MIN_TILE..=MAX_TILE).contains(&v) => Some(v),
            Ok(v) => {
                eprintln!(
                    "cuszp: ignoring CUSZP_TILE_ELEMS={v} (outside \
                     [{MIN_TILE}, {MAX_TILE}]); autotuning instead"
                );
                None
            }
            Err(_) => {
                eprintln!(
                    "cuszp: ignoring CUSZP_TILE_ELEMS={s:?} (expected an \
                     element count); autotuning instead"
                );
                None
            }
        }
    })
}

/// The tile size (in elements) the fast codec should use for `dtype` at
/// dispatch tier `level`. First call per `(dtype, level)` runs the
/// microbenchmark; later calls return the cached winner. Thread-safe
/// (concurrent first calls race benignly inside [`OnceLock`]).
pub fn tile_elems(dtype: DType, level: SimdLevel) -> usize {
    if let Some(t) = env_override() {
        return t;
    }
    static CACHE: [[OnceLock<usize>; 3]; 2] = [const { [const { OnceLock::new() }; 3] }; 2];
    let d = match dtype {
        DType::F32 => 0,
        DType::F64 => 1,
    };
    let l = match level {
        SimdLevel::Scalar => 0,
        SimdLevel::Avx2 => 1,
        SimdLevel::Avx512 => 2,
    };
    *CACHE[d][l].get_or_init(|| autotune(dtype, level))
}

/// Probe every candidate through the real phase-1 kernel and keep the
/// fastest. Ties and noise resolve toward the earlier (smaller)
/// candidate only through strict `<`, so a flat profile picks the
/// smallest tile — the cache-friendliest safe answer.
fn autotune(dtype: DType, level: SimdLevel) -> usize {
    let mut best = (f64::INFINITY, DEFAULT_TILE_ELEMS);
    for &tile in &CANDIDATES {
        let secs = crate::fast::tune_probe(dtype, level, tile);
        if secs < best.0 {
            best = (secs, tile);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_tile_is_a_candidate_or_override() {
        for dtype in [DType::F32, DType::F64] {
            for level in SimdLevel::ALL {
                if level > crate::simd::detect_level() {
                    continue;
                }
                let t = tile_elems(dtype, level);
                assert!(
                    CANDIDATES.contains(&t) || ((MIN_TILE..=MAX_TILE).contains(&t)),
                    "tile {t} out of range"
                );
                // Cached: second call returns the same answer.
                assert_eq!(tile_elems(dtype, level), t);
            }
        }
    }
}
