//! One module per paper table/figure. Every experiment takes a [`Ctx`]
//! and regenerates its artifact, printing paper-vs-measured values.

pub mod ablations;
pub mod alloc_profile;
pub mod fig01_motivation;
pub mod fig06_cdf;
pub mod fig07_smoothness;
pub mod fig10_sync;
pub mod fig13_end_to_end;
pub mod fig14_breakdown;
pub mod fig15_kernel;
pub mod fig16_artifacts;
pub mod fig19_visual;
pub mod fig20_isosurface;
pub mod fig21_kernel_breakdown;
pub mod fig22_time_varying;
pub mod gpus;
pub mod host_codec;
pub mod hybrid_ratio;
pub mod partial_read;
pub mod pipeline_scaling;
pub mod rate_distortion;
pub mod service_load;
pub mod table3_ratio;

use datasets::Scale;
use std::path::PathBuf;

/// Shared experiment context.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Dataset generation scale.
    pub scale: Scale,
    /// Artifact output directory.
    pub out_dir: PathBuf,
    /// Upper bound on fields generated per dataset (keeps sweeps
    /// tractable; Table 2's full field counts are available at the cost of
    /// runtime).
    pub max_fields: usize,
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx {
            scale: Scale::Small,
            out_dir: PathBuf::from("artifacts"),
            max_fields: 3,
        }
    }
}

/// Experiment registry: `(id, description, runner)`.
pub type Runner = fn(&Ctx);

/// Every experiment, in paper order.
pub fn registry() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        (
            "fig01",
            "RTM visualization motivation (slice renders + SSIM)",
            fig01_motivation::run as Runner,
        ),
        (
            "fig06",
            "CDF of block relative value range (L=8, 32)",
            fig06_cdf::run as Runner,
        ),
        (
            "fig07",
            "Dataset smoothness slice renders",
            fig07_smoothness::run as Runner,
        ),
        (
            "fig10",
            "Global Synchronization throughput",
            fig10_sync::run as Runner,
        ),
        (
            "fig13",
            "End-to-end compression/decompression throughput",
            fig13_end_to_end::run as Runner,
        ),
        (
            "fig14",
            "End-to-end breakdown (GPU/CPU/Memcpy), Hurricane U",
            fig14_breakdown::run as Runner,
        ),
        ("fig15", "Kernel throughput", fig15_kernel::run as Runner),
        (
            "table3",
            "Compression ratios, 3 compressors x 6 datasets x 4 REL bounds",
            table3_ratio::run as Runner,
        ),
        (
            "fig16",
            "cuSZx constant-block stripe artifacts (CESM)",
            fig16_artifacts::run as Runner,
        ),
        (
            "fig17",
            "Rate distortion: PSNR (and Fig 18: SSIM)",
            rate_distortion::run as Runner,
        ),
        (
            "fig19",
            "Slice visualization cuSZp vs cuZFP at matched CR",
            fig19_visual::run as Runner,
        ),
        (
            "fig20",
            "Isosurface similarity, NYX",
            fig20_isosurface::run as Runner,
        ),
        (
            "fig21",
            "cuSZp kernel-time breakdown (QP/FE/GS/BB)",
            fig21_kernel_breakdown::run as Runner,
        ),
        (
            "fig22",
            "Time-varying RTM throughput",
            fig22_time_varying::run as Runner,
        ),
        (
            "gpus",
            "Lower-end GPU kernel throughput (A100/V100/3080)",
            gpus::run as Runner,
        ),
        (
            "pipeline",
            "Batched multi-stream pipeline scaling vs worker count",
            pipeline_scaling::run as Runner,
        ),
        (
            "host_codec",
            "Host codec throughput: host_ref vs word-parallel fast codec",
            host_codec::run as Runner,
        ),
        (
            "alloc_profile",
            "Small-payload throughput: allocating API vs zero-allocation arena API",
            alloc_profile::run as Runner,
        ),
        (
            "partial_read",
            "Block-granular random access: bytes touched and latency vs read size",
            partial_read::run as Runner,
        ),
        (
            "hybrid_ratio",
            "Hybrid second stage: ratio and throughput per entropy mode",
            hybrid_ratio::run as Runner,
        ),
        (
            "service_load",
            "Service sustained throughput and p99 latency vs concurrent clients",
            service_load::run as Runner,
        ),
        (
            "ablations",
            "Design-choice ablations (L, Lorenzo, encoding)",
            ablations::run as Runner,
        ),
    ]
}
