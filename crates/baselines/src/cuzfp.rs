//! cuZFP-like compressor: fixed-rate transform coding in a single kernel
//! (paper refs [21, 33], §5).
//!
//! The algorithm family of ZFP, reimplemented from its published design:
//!
//! 1. Partition the field into blocks of `4^d` values (d = 1..3; higher-D
//!    fields collapse leading axes). Edge blocks pad by clamping.
//! 2. Per block: align to a common exponent and convert to 32-bit fixed
//!    point; apply the forward decorrelating **lifting transform** along
//!    each axis; reorder coefficients by total sequency; map to
//!    **negabinary** so significance decays from the MSB.
//! 3. Emit bit planes MSB→LSB into a per-block budget of exactly
//!    `rate × 4^d` bits (16 of which hold the block exponent). Fixed rate ⇒
//!    block offsets are multiplications, so the whole compressor is one
//!    kernel — but there is **no error bound**, and low rates produce the
//!    blocky artifacts of Fig 19 and the poor 1-D quality of Fig 17e.
//!
//! Like the original, the lifting pair is not bit-exact (inverse recovers
//! fixed-point values to within ~2 LSBs of the `2^-30` block scale), which
//! is far below bit-plane truncation error at any practical rate.

use crate::common::{Compressor, CompressorKind, Stream};
use gpu_sim::{DeviceBuffer, Gpu, LaunchConfig};
use std::any::Any;

/// Step labels for the profiler.
pub const STEP_GATHER: &str = "gather";
/// Transform step label.
pub const STEP_XFORM: &str = "transform";
/// Bit-plane emission step label.
pub const STEP_PLANES: &str = "bitplanes";

/// Bits reserved per block for the common exponent.
const EXP_BITS: usize = 16;
/// Exponent bias so it serializes as unsigned.
const EXP_BIAS: i32 = 16384;

/// Device-resident cuZFP stream (fixed rate ⇒ fixed geometry).
pub struct CuzfpStream {
    /// The packed bit stream, `block_bytes` per block.
    pub bits: DeviceBuffer<u8>,
    /// Bytes per block (`rate × 4^d / 8`, rounded up to whole bytes).
    pub block_bytes: usize,
    /// Number of blocks.
    pub num_blocks: usize,
    /// Original logical shape (collapsed to ≤3 axes).
    pub shape: Vec<usize>,
    /// Original element count.
    pub num_elements: usize,
    /// Rate in bits per value.
    pub rate: u32,
}

impl Stream for CuzfpStream {
    fn stream_bytes(&self) -> u64 {
        (self.num_blocks * self.block_bytes) as u64
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The cuZFP-like compressor at a fixed `rate` (bits per value).
#[derive(Debug, Clone, Copy)]
pub struct CuzfpLike {
    /// Bits per value; the paper evaluates 4, 8, 16, 24.
    pub rate: u32,
}

impl CuzfpLike {
    /// Compressor at `rate` bits/value.
    ///
    /// # Panics
    /// Panics if the rate is 0 or above 32.
    pub fn new(rate: u32) -> Self {
        assert!((1..=32).contains(&rate), "rate must be in 1..=32");
        CuzfpLike { rate }
    }
}

/// Collapse an arbitrary shape to at most 3 axes (leading axes merge).
pub fn collapse_shape(shape: &[usize]) -> Vec<usize> {
    match shape.len() {
        0 => vec![1],
        1..=3 => shape.to_vec(),
        _ => {
            let lead: usize = shape[..shape.len() - 2].iter().product();
            vec![lead, shape[shape.len() - 2], shape[shape.len() - 1]]
        }
    }
}

/// zfp's int→negabinary-style uint mapping (order-preserving in
/// significance).
#[inline]
fn int2uint(x: i32) -> u32 {
    ((x as u32).wrapping_add(0xaaaa_aaaa)) ^ 0xaaaa_aaaa
}

/// Inverse of [`int2uint`].
#[inline]
fn uint2int(u: u32) -> i32 {
    ((u ^ 0xaaaa_aaaa).wrapping_sub(0xaaaa_aaaa)) as i32
}

/// Forward lifting transform over 4 elements at stride `s`.
fn fwd_lift(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    x += w;
    x >>= 1;
    w -= x;
    z += y;
    z >>= 1;
    y -= z;
    x += z;
    x >>= 1;
    z -= x;
    w += y;
    w >>= 1;
    y -= w;
    w += y >> 1;
    y -= w >> 1;
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Inverse lifting transform over 4 elements at stride `s`.
fn inv_lift(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    y += w >> 1;
    w -= y >> 1;
    y += w;
    w <<= 1;
    w -= y;
    z += x;
    x <<= 1;
    x -= z;
    y += z;
    z <<= 1;
    z -= y;
    w += x;
    x <<= 1;
    x -= w;
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Geometry helper: blocks along each axis and block count for `shape`.
fn block_grid(shape: &[usize]) -> (Vec<usize>, usize) {
    let grid: Vec<usize> = shape.iter().map(|&s| s.div_ceil(4)).collect();
    let count = grid.iter().product();
    (grid, count)
}

/// Sequency (total-order) permutation for a `4^d` block: coefficient
/// indices sorted by coordinate sum, ties by index — approximating zfp's
/// PERM tables.
fn sequency_order(d: usize) -> Vec<usize> {
    let n = 4usize.pow(d as u32);
    let mut idx: Vec<usize> = (0..n).collect();
    let key = |i: usize| -> usize {
        let mut rem = i;
        let mut sum = 0;
        for _ in 0..d {
            sum += rem % 4;
            rem /= 4;
        }
        sum
    };
    idx.sort_by_key(|&i| (key(i), i));
    idx
}

struct BlockCodec {
    d: usize,
    n: usize,
    order: Vec<usize>,
    plane_bits: usize,
}

impl BlockCodec {
    fn new(d: usize) -> Self {
        let n = 4usize.pow(d as u32);
        BlockCodec {
            d,
            n,
            order: sequency_order(d),
            plane_bits: n,
        }
    }

    /// Encode one gathered block into `out` (exactly `budget_bits` bits).
    fn encode(&self, vals: &[f32], budget_bits: usize, out: &mut [u8]) {
        for b in out.iter_mut() {
            *b = 0;
        }
        // Common exponent. ±Inf has an infinite log2 which saturates the
        // i32 cast; clamp to the f32 exponent range instead of overflowing.
        let max = vals.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let e = if max > 0.0 {
            max.log2().floor().min(127.0) as i32 + 1
        } else {
            // All-zero block: store the minimum exponent; planes stay 0.
            -EXP_BIAS
        };
        let e_store = (e + EXP_BIAS) as u32 & 0xFFFF;
        let mut writer = BitWriter { out, pos: 0 };
        writer.put(e_store as u64, EXP_BITS);

        if max > 0.0 {
            // Fixed point at 2^(30 − e).
            let scale = (30 - e) as f64;
            let mut q: Vec<i64> = vals
                .iter()
                .map(|&v| ((v as f64) * scale.exp2()).round() as i64)
                .collect();
            // Lifting along each axis.
            self.transform(&mut q, false);
            // Reorder + negabinary.
            let coeffs: Vec<u32> = self.order.iter().map(|&i| int2uint(q[i] as i32)).collect();
            // Bit planes MSB→LSB within the remaining budget.
            let mut remaining = budget_bits - EXP_BITS;
            let mut plane = 31i32;
            while remaining > 0 && plane >= 0 {
                let take = remaining.min(self.plane_bits);
                for (k, &c) in coeffs.iter().take(take).enumerate() {
                    let bit = (c >> plane) & 1;
                    let _ = k;
                    writer.put(bit as u64, 1);
                }
                remaining -= take;
                plane -= 1;
            }
        }
    }

    /// Decode one block from `bits` into `vals`.
    fn decode(&self, bits: &[u8], budget_bits: usize, vals: &mut [f32]) {
        let mut reader = BitReader { bits, pos: 0 };
        let e_store = reader.get(EXP_BITS) as u32;
        let e = e_store as i32 - EXP_BIAS;
        if e == -EXP_BIAS {
            for v in vals.iter_mut() {
                *v = 0.0;
            }
            return;
        }
        let mut coeffs = vec![0u32; self.n];
        let mut remaining = budget_bits - EXP_BITS;
        let mut plane = 31i32;
        while remaining > 0 && plane >= 0 {
            let take = remaining.min(self.plane_bits);
            for c in coeffs.iter_mut().take(take) {
                let bit = reader.get(1) as u32;
                *c |= bit << plane;
            }
            remaining -= take;
            plane -= 1;
        }
        let mut q = vec![0i64; self.n];
        for (k, &src) in self.order.iter().enumerate() {
            q[src] = uint2int(coeffs[k]) as i64;
        }
        self.transform(&mut q, true);
        let scale = (e - 30) as f64;
        for (i, v) in vals.iter_mut().enumerate() {
            *v = ((q[i] as f64) * scale.exp2()) as f32;
        }
    }

    /// Apply the lifting transform along every axis (inverse applies axes
    /// in reverse order).
    fn transform(&self, q: &mut [i64], inverse: bool) {
        match self.d {
            1 => {
                if inverse {
                    inv_lift(q, 0, 1);
                } else {
                    fwd_lift(q, 0, 1);
                }
            }
            2 => {
                if inverse {
                    for x in 0..4 {
                        inv_lift(q, x, 4);
                    }
                    for y in 0..4 {
                        inv_lift(q, 4 * y, 1);
                    }
                } else {
                    for y in 0..4 {
                        fwd_lift(q, 4 * y, 1);
                    }
                    for x in 0..4 {
                        fwd_lift(q, x, 4);
                    }
                }
            }
            _ => {
                if inverse {
                    for z in 0..4 {
                        for y in 0..4 {
                            inv_lift(q, 16 * z + 4 * y, 1);
                        }
                    }
                    for z in 0..4 {
                        for x in 0..4 {
                            inv_lift(q, 16 * z + x, 4);
                        }
                    }
                    for y in 0..4 {
                        for x in 0..4 {
                            inv_lift(q, 4 * y + x, 16);
                        }
                    }
                } else {
                    for y in 0..4 {
                        for x in 0..4 {
                            fwd_lift(q, 4 * y + x, 16);
                        }
                    }
                    for z in 0..4 {
                        for x in 0..4 {
                            fwd_lift(q, 16 * z + x, 4);
                        }
                    }
                    for z in 0..4 {
                        for y in 0..4 {
                            fwd_lift(q, 16 * z + 4 * y, 1);
                        }
                    }
                }
            }
        }
    }
}

struct BitWriter<'a> {
    out: &'a mut [u8],
    pos: usize,
}

impl BitWriter<'_> {
    fn put(&mut self, bits: u64, count: usize) {
        for k in 0..count {
            if (bits >> k) & 1 != 0 {
                self.out[self.pos / 8] |= 1 << (self.pos % 8);
            }
            self.pos += 1;
        }
    }
}

struct BitReader<'a> {
    bits: &'a [u8],
    pos: usize,
}

impl BitReader<'_> {
    fn get(&mut self, count: usize) -> u64 {
        let mut v = 0u64;
        for k in 0..count {
            let bit = (self.bits[self.pos / 8] >> (self.pos % 8)) & 1;
            v |= (bit as u64) << k;
            self.pos += 1;
        }
        v
    }
}

/// Gather a 4^d block at block-coordinates `bc`, clamping at edges.
fn gather(inp: &gpu_sim::GpuSlice<'_, f32>, shape: &[usize], bc: &[usize], vals: &mut [f32]) {
    let d = shape.len();
    let mut strides = vec![1usize; d];
    for i in (0..d.saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    let n = vals.len();
    for (k, v) in vals.iter_mut().enumerate() {
        let mut rem = k;
        let mut idx = 0usize;
        for axis in (0..d).rev() {
            let o = rem % 4;
            rem /= 4;
            let coord = (bc[axis] * 4 + o).min(shape[axis] - 1);
            idx += coord * strides[axis];
        }
        let _ = n;
        *v = inp.get(idx);
    }
}

/// Scatter a decoded block back (skipping padded coordinates).
fn scatter(out: &gpu_sim::GpuSlice<'_, f32>, shape: &[usize], bc: &[usize], vals: &[f32]) -> usize {
    let d = shape.len();
    let mut strides = vec![1usize; d];
    for i in (0..d.saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    let mut stored = 0usize;
    'vals: for (k, &v) in vals.iter().enumerate() {
        let mut rem = k;
        let mut idx = 0usize;
        for axis in (0..d).rev() {
            let o = rem % 4;
            rem /= 4;
            let coord = bc[axis] * 4 + o;
            if coord >= shape[axis] {
                continue 'vals; // padded position
            }
            idx += coord * strides[axis];
        }
        out.set(idx, v);
        stored += 1;
    }
    stored
}

impl Compressor for CuzfpLike {
    fn kind(&self) -> CompressorKind {
        CompressorKind::Cuzfp
    }

    fn is_error_bounded(&self) -> bool {
        false
    }

    fn compress(
        &self,
        gpu: &mut Gpu,
        input: &DeviceBuffer<f32>,
        shape: &[usize],
        _eb: f64,
    ) -> Box<dyn Stream> {
        let shape = collapse_shape(shape);
        let n: usize = shape.iter().product();
        assert_eq!(n, input.len(), "shape/data mismatch");
        let d = shape.len();
        let block_vals = 4usize.pow(d as u32);
        let (grid, num_blocks) = block_grid(&shape);
        // zfp's `minbits`: a block always stores its exponent plus at least
        // one full bit plane, so very low nominal rates on small (1-D)
        // blocks are clamped up.
        let budget_bits = ((self.rate as usize) * block_vals).max(EXP_BITS + block_vals);
        let block_bytes = budget_bits.div_ceil(8);
        let bits = gpu.alloc::<u8>(num_blocks * block_bytes);
        let rate = self.rate;

        gpu.launch("cuzfp_encode", LaunchConfig::cover(num_blocks, 16), |ctx| {
            let inp = input.slice();
            let out = bits.slice();
            let codec = BlockCodec::new(d);
            let mut vals = vec![0.0f32; block_vals];
            let mut buf = vec![0u8; block_bytes];
            let b0 = ctx.block * 16;
            let mut blocks_done = 0u64;
            for b in b0..(b0 + 16).min(num_blocks) {
                // Decompose block index into block coordinates.
                let mut rem = b;
                let mut bc = vec![0usize; d];
                for axis in (0..d).rev() {
                    bc[axis] = rem % grid[axis];
                    rem /= grid[axis];
                }
                gather(&inp, &shape, &bc, &mut vals);
                codec.encode(&vals, budget_bits, &mut buf);
                out.write_slice(b * block_bytes, &buf);
                blocks_done += 1;
            }
            ctx.read(STEP_GATHER, blocks_done * (block_vals * 4) as u64);
            ctx.ops(STEP_GATHER, blocks_done * (block_vals * 2) as u64);
            ctx.ops(STEP_XFORM, blocks_done * (block_vals * 12) as u64);
            ctx.ops(STEP_PLANES, blocks_done * budget_bits as u64);
            ctx.write(STEP_PLANES, blocks_done * block_bytes as u64);
            let _ = rate;
        });

        Box::new(CuzfpStream {
            bits,
            block_bytes,
            num_blocks,
            shape,
            num_elements: n,
            rate: self.rate,
        })
    }

    fn decompress(&self, gpu: &mut Gpu, stream: &dyn Stream) -> DeviceBuffer<f32> {
        let s = stream
            .as_any()
            .downcast_ref::<CuzfpStream>()
            .expect("not a cuZFP stream");
        let d = s.shape.len();
        let block_vals = 4usize.pow(d as u32);
        let (grid, num_blocks) = block_grid(&s.shape);
        assert_eq!(num_blocks, s.num_blocks);
        let budget_bits = ((s.rate as usize) * block_vals).max(EXP_BITS + block_vals);
        let output = gpu.alloc::<f32>(s.num_elements);

        gpu.launch("cuzfp_decode", LaunchConfig::cover(num_blocks, 16), |ctx| {
            let inp = s.bits.slice();
            let out = output.slice();
            let codec = BlockCodec::new(d);
            let mut vals = vec![0.0f32; block_vals];
            let mut buf = vec![0u8; s.block_bytes];
            let b0 = ctx.block * 16;
            let mut blocks_done = 0u64;
            let mut stored = 0u64;
            for b in b0..(b0 + 16).min(num_blocks) {
                let mut rem = b;
                let mut bc = vec![0usize; d];
                for axis in (0..d).rev() {
                    bc[axis] = rem % grid[axis];
                    rem /= grid[axis];
                }
                let src = b * s.block_bytes;
                for (k, byte) in buf.iter_mut().enumerate() {
                    *byte = inp.get(src + k);
                }
                codec.decode(&buf, budget_bits, &mut vals);
                stored += scatter(&out, &s.shape, &bc, &vals) as u64;
                blocks_done += 1;
            }
            ctx.read(STEP_PLANES, blocks_done * s.block_bytes as u64);
            ctx.ops(STEP_PLANES, blocks_done * budget_bits as u64);
            ctx.ops(STEP_XFORM, blocks_done * (block_vals * 12) as u64);
            ctx.write(STEP_GATHER, stored * 4);
            ctx.ops(STEP_GATHER, stored * 2);
        });

        output
    }
}

/// Host-side `CUZFPH1` byte-stream form of the cuZFP-like codec (1-D,
/// fixed rate), with block-granular partial decode for the store layer.
///
/// Layout (all integers little-endian):
///
/// ```text
/// magic            8 B   "CUZFPH1\0"
/// rate             4 B   u32, bits per value ∈ [1, 32]
/// num_elements     8 B   u64
/// bits             ⌈N/4⌉ × block_bytes   exact — no trailing bytes
/// ```
///
/// Fixed rate means block offsets are multiplications, so partial decode
/// needs no offset table at all — the defining random-access property of
/// the ZFP family. Each block budgets `max(rate × 4, 16 + 4)` bits
/// (zfp's `minbits`: the 16-bit exponent plus one full plane), rounded up
/// to whole bytes. **Not error-bounded** — the conformance suite branches
/// on that.
pub mod host {
    use super::{fwd_lift, int2uint, inv_lift, uint2int, BitReader, BitWriter, EXP_BIAS, EXP_BITS};
    use cuszp_core::FormatError;
    use std::ops::Range;

    /// Stream magic.
    pub const MAGIC: [u8; 8] = *b"CUZFPH1\0";
    /// Header size: magic + rate (u32 LE) + num_elements (u64 LE).
    pub const HEADER_BYTES: usize = 20;
    /// Values per 1-D block.
    pub const BLOCK: usize = 4;

    /// Bit budget of one block at `rate` bits/value (zfp `minbits` clamp).
    pub fn budget_bits(rate: u32) -> usize {
        (rate as usize * BLOCK).max(EXP_BITS + BLOCK)
    }

    /// Bytes of one block at `rate` bits/value.
    pub fn block_bytes(rate: u32) -> usize {
        budget_bits(rate).div_ceil(8)
    }

    /// Encode one gathered block of 4 values into `out`
    /// (`block_bytes(rate)` bytes). Allocation-free mirror of the kernel
    /// codec at d = 1, where the sequency order is the identity.
    fn encode_block1(vals: &[f32; BLOCK], budget_bits: usize, out: &mut [u8]) {
        out.fill(0);
        let max = vals.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        // Clamped like the kernel codec: ±Inf must saturate, not overflow.
        let e = if max > 0.0 {
            max.log2().floor().min(127.0) as i32 + 1
        } else {
            -EXP_BIAS
        };
        let mut writer = BitWriter { out, pos: 0 };
        writer.put(((e + EXP_BIAS) as u32 & 0xFFFF) as u64, EXP_BITS);
        if max > 0.0 {
            let scale = ((30 - e) as f64).exp2();
            let mut q = [0i64; BLOCK];
            for (qi, &v) in q.iter_mut().zip(vals) {
                *qi = ((v as f64) * scale).round() as i64;
            }
            fwd_lift(&mut q, 0, 1);
            let mut coeffs = [0u32; BLOCK];
            for (c, &qi) in coeffs.iter_mut().zip(&q) {
                *c = int2uint(qi as i32);
            }
            let mut remaining = budget_bits - EXP_BITS;
            let mut plane = 31i32;
            while remaining > 0 && plane >= 0 {
                let take = remaining.min(BLOCK);
                for &c in coeffs.iter().take(take) {
                    writer.put(((c >> plane) & 1) as u64, 1);
                }
                remaining -= take;
                plane -= 1;
            }
        }
    }

    /// Decode one block. Allocation-free inverse of [`encode_block1`].
    fn decode_block1(bits: &[u8], budget_bits: usize, vals: &mut [f32; BLOCK]) {
        let mut reader = BitReader { bits, pos: 0 };
        let e = reader.get(EXP_BITS) as i32 - EXP_BIAS;
        if e == -EXP_BIAS {
            vals.fill(0.0);
            return;
        }
        let mut coeffs = [0u32; BLOCK];
        let mut remaining = budget_bits - EXP_BITS;
        let mut plane = 31i32;
        while remaining > 0 && plane >= 0 {
            let take = remaining.min(BLOCK);
            for c in coeffs.iter_mut().take(take) {
                *c |= (reader.get(1) as u32) << plane;
            }
            remaining -= take;
            plane -= 1;
        }
        let mut q = [0i64; BLOCK];
        for (qi, &c) in q.iter_mut().zip(&coeffs) {
            *qi = uint2int(c) as i64;
        }
        inv_lift(&mut q, 0, 1);
        let scale = ((e - 30) as f64).exp2();
        for (v, &qi) in vals.iter_mut().zip(&q) {
            *v = ((qi as f64) * scale) as f32;
        }
    }

    /// Compress `data` at `rate` bits/value into a self-describing
    /// `CUZFPH1` stream, replacing the contents of `out`. Edge blocks pad
    /// by clamping (repeat the last element), like the kernel's gather.
    pub fn compress(data: &[f32], rate: u32, out: &mut Vec<u8>) {
        assert!((1..=32).contains(&rate), "rate must be in 1..=32");
        let num_blocks = data.len().div_ceil(BLOCK);
        let bb = block_bytes(rate);
        let budget = budget_bits(rate);
        out.clear();
        out.resize(HEADER_BYTES + num_blocks * bb, 0);
        out[..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&rate.to_le_bytes());
        out[12..20].copy_from_slice(&(data.len() as u64).to_le_bytes());
        let mut vals = [0.0f32; BLOCK];
        for b in 0..num_blocks {
            for (k, v) in vals.iter_mut().enumerate() {
                *v = data[(b * BLOCK + k).min(data.len() - 1)];
            }
            let off = HEADER_BYTES + b * bb;
            encode_block1(&vals, budget, &mut out[off..off + bb]);
        }
    }

    /// Borrowed, fully validated view of a `CUZFPH1` stream.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct HostStream<'a> {
        /// Rate in bits per value.
        pub rate: u32,
        /// Element count of the original array.
        pub num_elements: usize,
        /// Packed per-block bit stream, `block_bytes(rate)` per block.
        pub bits: &'a [u8],
    }

    impl<'a> HostStream<'a> {
        /// Parse `bytes`, validating the rate and that the bit stream is
        /// **exactly** `num_blocks × block_bytes` long.
        pub fn parse(bytes: &'a [u8]) -> Result<HostStream<'a>, FormatError> {
            if bytes.len() < HEADER_BYTES {
                return Err(FormatError::Truncated);
            }
            if bytes[..8] != MAGIC {
                return Err(FormatError::BadMagic);
            }
            let rate = u32::from_le_bytes(bytes[8..12].try_into().expect("len checked"));
            if !(1..=32).contains(&rate) {
                return Err(FormatError::Corrupt("bad rate"));
            }
            let n = u64::from_le_bytes(bytes[12..20].try_into().expect("len checked"));
            let n = usize::try_from(n).map_err(|_| FormatError::Truncated)?;
            let num_blocks = n.div_ceil(BLOCK);
            let expected = num_blocks
                .checked_mul(block_bytes(rate))
                .ok_or(FormatError::Truncated)?;
            let bits = &bytes[HEADER_BYTES..];
            if bits.len() < expected {
                return Err(FormatError::Truncated);
            }
            if bits.len() > expected {
                return Err(FormatError::Corrupt("trailing bytes"));
            }
            Ok(HostStream {
                rate,
                num_elements: n,
                bits,
            })
        }

        /// Number of 4-value blocks.
        pub fn num_blocks(&self) -> usize {
            self.num_elements.div_ceil(BLOCK)
        }

        /// Decode blocks `blocks` into `out` (which must hold exactly the
        /// elements those blocks cover, the final block being ragged).
        /// Returns the payload bytes read — fixed rate makes the offsets
        /// pure multiplications. Allocates nothing.
        pub fn decode_blocks(&self, blocks: Range<usize>, out: &mut [f32]) -> usize {
            let (b0, b1) = (blocks.start, blocks.end);
            assert!(
                b0 <= b1 && b1 <= self.num_blocks(),
                "block range out of bounds"
            );
            let covered = (b1 * BLOCK).min(self.num_elements) - (b0 * BLOCK).min(self.num_elements);
            assert_eq!(out.len(), covered, "output slice length");
            let bb = block_bytes(self.rate);
            let budget = budget_bits(self.rate);
            let mut vals = [0.0f32; BLOCK];
            let mut written = 0usize;
            for b in b0..b1 {
                decode_block1(&self.bits[b * bb..(b + 1) * bb], budget, &mut vals);
                let take = BLOCK.min(out.len() - written);
                out[written..written + take].copy_from_slice(&vals[..take]);
                written += take;
            }
            (b1 - b0) * bb
        }

        /// Decode the whole stream; `out.len()` must equal
        /// [`HostStream::num_elements`].
        pub fn decode_into(&self, out: &mut [f32]) -> usize {
            self.decode_blocks(0..self.num_blocks(), out)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::super::BlockCodec;
        use super::*;

        fn wave(n: usize) -> Vec<f32> {
            (0..n).map(|i| (i as f32 * 0.05).sin() * 12.0).collect()
        }

        #[test]
        fn block_codec_differential() {
            // The stack-array block codec must be bit-identical to the
            // kernel's allocating BlockCodec at d = 1.
            let oracle = BlockCodec::new(1);
            let data = wave(257); // ragged tail
            for rate in [4u32, 8, 16, 24, 32] {
                let mut bytes = Vec::new();
                compress(&data, rate, &mut bytes);
                let s = HostStream::parse(&bytes).unwrap();
                let bb = block_bytes(rate);
                let budget = budget_bits(rate);
                let mut oracle_buf = vec![0u8; bb];
                let mut vals = [0.0f32; BLOCK];
                for b in 0..s.num_blocks() {
                    for (k, v) in vals.iter_mut().enumerate() {
                        *v = data[(b * BLOCK + k).min(data.len() - 1)];
                    }
                    oracle.encode(&vals, budget, &mut oracle_buf);
                    assert_eq!(
                        &s.bits[b * bb..(b + 1) * bb],
                        &oracle_buf[..],
                        "rate {rate} block {b}"
                    );
                    let mut host_out = [0.0f32; BLOCK];
                    decode_block1(&oracle_buf, budget, &mut host_out);
                    let mut oracle_out = vec![0.0f32; BLOCK];
                    oracle.decode(&oracle_buf, budget, &mut oracle_out);
                    assert_eq!(&host_out[..], &oracle_out[..], "rate {rate} block {b}");
                }
            }
        }

        #[test]
        fn high_rate_high_quality() {
            let data = wave(1000);
            let mut bytes = Vec::new();
            compress(&data, 24, &mut bytes);
            let s = HostStream::parse(&bytes).unwrap();
            let mut out = vec![0f32; 1000];
            s.decode_into(&mut out);
            let max_err = data
                .iter()
                .zip(&out)
                .map(|(&d, &r)| (d - r).abs())
                .fold(0.0f32, f32::max);
            assert!(max_err < 0.01, "rate-24 near-lossless, err {max_err}");
        }

        #[test]
        fn partial_decode_matches_full_slices() {
            let data = wave(103); // 26 blocks, ragged tail of 3
            let mut bytes = Vec::new();
            compress(&data, 16, &mut bytes);
            let s = HostStream::parse(&bytes).unwrap();
            let mut full = vec![0f32; 103];
            let total = s.decode_into(&mut full);
            assert_eq!(total, s.bits.len());
            for range in [0..1, 5..9, 25..26, 0..26, 13..13] {
                let lo = (range.start * BLOCK).min(103);
                let hi = (range.end * BLOCK).min(103);
                let mut part = vec![0f32; hi - lo];
                let read = s.decode_blocks(range.clone(), &mut part);
                assert_eq!(read, (range.end - range.start) * block_bytes(16));
                assert_eq!(part, full[lo..hi]);
            }
        }

        #[test]
        fn corruption_rejected() {
            let mut bytes = Vec::new();
            compress(&wave(64), 8, &mut bytes);
            assert!(HostStream::parse(&bytes[..HEADER_BYTES - 1]).is_err());
            assert_eq!(
                HostStream::parse(&bytes[..bytes.len() - 1]),
                Err(FormatError::Truncated),
            );
            let mut magic = bytes.clone();
            magic[0] = b'X';
            assert_eq!(HostStream::parse(&magic), Err(FormatError::BadMagic));
            let mut trailing = bytes.clone();
            trailing.push(0);
            assert!(matches!(
                HostStream::parse(&trailing),
                Err(FormatError::Corrupt(_))
            ));
            let mut bad_rate = bytes;
            bad_rate[8..12].copy_from_slice(&99u32.to_le_bytes());
            assert!(matches!(
                HostStream::parse(&bad_rate),
                Err(FormatError::Corrupt(_))
            ));
        }

        #[test]
        fn empty_and_zero_inputs() {
            let mut bytes = Vec::new();
            compress(&[], 8, &mut bytes);
            let s = HostStream::parse(&bytes).unwrap();
            assert_eq!(s.num_blocks(), 0);
            s.decode_into(&mut []);

            compress(&[0.0f32; 40], 8, &mut bytes);
            let s = HostStream::parse(&bytes).unwrap();
            let mut out = vec![1f32; 40];
            s.decode_into(&mut out);
            assert!(out.iter().all(|&v| v == 0.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn run(data: &[f32], shape: &[usize], rate: u32) -> (Vec<f32>, u64) {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(data);
        let comp = CuzfpLike::new(rate);
        let stream = comp.compress(&mut gpu, &input, shape, 0.0);
        let bytes = stream.stream_bytes();
        let out = comp.decompress(&mut gpu, stream.as_ref());
        (gpu.d2h(&out), bytes)
    }

    #[test]
    fn lift_roundtrip_error_tiny() {
        // The pair recovers values to within a few LSBs (zfp-like).
        let mut q: Vec<i64> = vec![123456, -99999, 5555, -1, 0, 7, 1 << 20, -(1 << 18)];
        let orig = q.clone();
        fwd_lift(&mut q, 0, 1);
        inv_lift(&mut q, 0, 1);
        for (a, b) in orig.iter().zip(&q[..4]) {
            assert!((a - b).abs() <= 4, "{a} vs {b}");
        }
    }

    #[test]
    fn negabinary_roundtrip() {
        for x in [-1000000, -1, 0, 1, 42, i32::MAX / 2, i32::MIN / 2] {
            assert_eq!(uint2int(int2uint(x)), x);
        }
    }

    #[test]
    fn fixed_rate_is_exact() {
        let data: Vec<f32> = (0..64 * 64).map(|i| (i as f32 * 0.01).sin()).collect();
        for rate in [4u32, 8, 16] {
            let (_, bytes) = run(&data, &[64, 64], rate);
            // 16×16 blocks of 16 values... 2-D: 4x4 blocks → 16 values each.
            let blocks = 16 * 16;
            assert_eq!(bytes, (blocks * (rate as usize * 16).div_ceil(8)) as u64);
        }
    }

    #[test]
    fn high_rate_high_quality() {
        let data: Vec<f32> = (0..4096)
            .map(|i| {
                let (y, x) = (i / 64, i % 64);
                ((x as f32) * 0.1).sin() * ((y as f32) * 0.07).cos() * 10.0
            })
            .collect();
        let (recon, _) = run(&data, &[64, 64], 24);
        let max_err = data
            .iter()
            .zip(&recon)
            .map(|(&d, &r)| (d - r).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_err < 0.01,
            "rate-24 should be near-lossless, err {max_err}"
        );
    }

    #[test]
    fn low_rate_low_quality_but_exact_size() {
        let data: Vec<f32> = (0..4096)
            .map(|i| ((i * 2654435761usize) % 1000) as f32 - 500.0)
            .collect();
        let (recon, bytes) = run(&data, &[64, 64], 4);
        assert_eq!(bytes, (256 * (4 * 16) / 8) as u64);
        // Not error bounded: random data at 4 bits/value is badly distorted.
        let max_err = data
            .iter()
            .zip(&recon)
            .map(|(&d, &r)| (d - r).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err > 1.0, "expected visible distortion, {max_err}");
    }

    #[test]
    fn three_d_roundtrip() {
        let data: Vec<f32> = (0..16 * 16 * 16)
            .map(|i| {
                let z = i / 256;
                let y = (i / 16) % 16;
                let x = i % 16;
                (x as f32 * 0.3).sin() + (y as f32 * 0.2).cos() + z as f32 * 0.1
            })
            .collect();
        let (recon, _) = run(&data, &[16, 16, 16], 16);
        let rmse = (data
            .iter()
            .zip(&recon)
            .map(|(&d, &r)| ((d - r) as f64).powi(2))
            .sum::<f64>()
            / data.len() as f64)
            .sqrt();
        assert!(rmse < 0.01, "rmse {rmse}");
    }

    #[test]
    fn one_d_and_edge_padding() {
        let data: Vec<f32> = (0..103).map(|i| i as f32 * 0.5).collect();
        let (recon, _) = run(&data, &[103], 16);
        assert_eq!(recon.len(), 103);
        let rmse = (data
            .iter()
            .zip(&recon)
            .map(|(&d, &r)| ((d - r) as f64).powi(2))
            .sum::<f64>()
            / 103.0)
            .sqrt();
        assert!(rmse < 0.5, "rmse {rmse}");
    }

    #[test]
    fn single_kernel_each_way() {
        let data: Vec<f32> = (0..1024).map(|i| i as f32).collect();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(&data);
        gpu.reset_timeline();
        let comp = CuzfpLike::new(8);
        let stream = comp.compress(&mut gpu, &input, &[32, 32], 0.0);
        assert_eq!(gpu.timeline().kernel_count(), 1);
        assert_eq!(gpu.timeline().memcpy_time(), 0.0);
        assert_eq!(gpu.timeline().cpu_time(), 0.0);
        gpu.reset_timeline();
        let _ = comp.decompress(&mut gpu, stream.as_ref());
        assert_eq!(gpu.timeline().kernel_count(), 1);
        assert_eq!(gpu.timeline().cpu_time(), 0.0);
    }

    #[test]
    fn collapse_shapes() {
        assert_eq!(collapse_shape(&[288, 115, 69, 69]), vec![288 * 115, 69, 69]);
        assert_eq!(collapse_shape(&[10, 20]), vec![10, 20]);
        assert_eq!(collapse_shape(&[7]), vec![7]);
    }

    #[test]
    fn all_zero_block_decodes_to_zero() {
        let data = vec![0.0f32; 256];
        let (recon, _) = run(&data, &[16, 16], 8);
        assert!(recon.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        CuzfpLike::new(0);
    }
}
