//! Cross-codec conformance: one parameterized table run against **every**
//! codec in the default registry (cuSZp, cuSZx, cuZFP). Each codec must
//! pass round-trip identity, the ABS/REL error-bound contract (where it
//! claims one), empty/constant/non-finite inputs, and exact-length frame
//! validation. Registering a new codec makes it subject to this suite
//! with zero test changes.

use cuszp_repro::cuszp_core::{value_range, DType};
use cuszp_repro::cuszp_store::{CodecRegistry, CodecScratch, ErrorBoundedCodec, StoreError};

/// Narrowing the f64 reconstruction to f32 costs up to a ULP of the
/// value; every bound check allows that slop on top of `eb`.
fn slack(v: f32) -> f64 {
    v.abs() as f64 * f32::EPSILON as f64 + f64::EPSILON
}

fn datasets() -> Vec<(&'static str, Vec<f32>)> {
    vec![
        (
            "wave",
            (0..4000).map(|i| (i as f32 * 0.013).sin() * 25.0).collect(),
        ),
        (
            "ragged", // stresses the final partial block of every block size
            (0..1013)
                .map(|i| (i as f32 * 0.17).cos() * 3.0 + i as f32 * 0.01)
                .collect(),
        ),
        (
            "rough",
            (0..2048)
                .map(|i| (((i * 2654435761usize) % 2000) as f32) * 0.25 - 250.0)
                .collect(),
        ),
        ("constant", vec![4.5f32; 777]),
        ("single", vec![-3.25f32]),
        ("empty", vec![]),
    ]
}

fn roundtrip(
    codec: &dyn ErrorBoundedCodec,
    data: &[f32],
    eb: f64,
    scratch: &mut CodecScratch,
) -> Vec<f32> {
    let mut frame = Vec::new();
    codec.encode(data, eb, scratch, &mut frame);
    assert_eq!(
        codec.num_elements(&frame).expect("own frame parses"),
        data.len(),
        "{}: frame element count",
        codec.name()
    );
    let mut out = vec![0f32; data.len()];
    codec
        .decode_into(&frame, scratch, &mut out)
        .expect("own frame decodes");
    out
}

#[test]
fn abs_bound_contract() {
    let registry = CodecRegistry::with_defaults();
    let mut scratch = CodecScratch::new();
    for codec in registry.codecs() {
        for (name, data) in datasets() {
            for eb in [1e-1, 1e-3] {
                let out = roundtrip(codec, &data, eb, &mut scratch);
                if !codec.is_error_bounded() {
                    continue; // cuZFP: fixed rate, no bound to check
                }
                for (i, (&d, &r)) in data.iter().zip(&out).enumerate() {
                    let err = (d as f64 - r as f64).abs();
                    assert!(
                        err <= eb * (1.0 + 1e-6) + slack(d) + slack(r),
                        "{} / {name} eb {eb} idx {i}: |{d} - {r}| = {err}",
                        codec.name()
                    );
                }
            }
        }
    }
}

#[test]
fn rel_bound_contract() {
    // REL resolves to ABS through the value range, exactly as the paper's
    // harness does; the resolved bound must then hold absolutely.
    let registry = CodecRegistry::with_defaults();
    let mut scratch = CodecScratch::new();
    for codec in registry.codecs().filter(|c| c.is_error_bounded()) {
        for (name, data) in datasets() {
            let range = value_range(&data);
            if !(range.is_finite() && range > 0.0) {
                continue; // constant/empty: REL is undefined
            }
            let rel = 1e-3;
            let eb = rel * range;
            let out = roundtrip(codec, &data, eb, &mut scratch);
            for (i, (&d, &r)) in data.iter().zip(&out).enumerate() {
                let err = (d as f64 - r as f64).abs();
                assert!(
                    err <= eb * (1.0 + 1e-6) + slack(d) + slack(r),
                    "{} / {name} rel {rel} idx {i}: |{d} - {r}| = {err}",
                    codec.name()
                );
            }
        }
    }
}

#[test]
fn f64_bound_contract() {
    // f64 is opt-in: codecs that claim it must honor the same ABS
    // contract on wide-range doubles; codecs that don't must fail with
    // the typed error, not silently narrow.
    let registry = CodecRegistry::with_defaults();
    let mut scratch = CodecScratch::new();
    let data: Vec<f64> = (0..3000)
        .map(|i| (i as f64 * 0.013).sin() * 1.0e7 + (i as f64 * 0.11).cos())
        .collect();
    let eb = 1e-2;
    for codec in registry.codecs() {
        let mut frame = Vec::new();
        if !codec.supports_dtype(DType::F64) {
            assert!(
                matches!(
                    codec.encode_f64(&data, eb, &mut scratch, &mut frame),
                    Err(StoreError::UnsupportedDtype { .. })
                ),
                "{}: must reject f64 with the typed error",
                codec.name()
            );
            continue;
        }
        codec
            .encode_f64(&data, eb, &mut scratch, &mut frame)
            .expect("claimed dtype encodes");
        assert_eq!(
            codec.num_elements(&frame).expect("own frame parses"),
            data.len(),
            "{}: f64 frame element count",
            codec.name()
        );
        let num_blocks = data.len().div_ceil(codec.block_len());
        let mut out = vec![0f64; data.len()];
        codec
            .decode_blocks_f64(&frame, 0..num_blocks, &mut scratch, &mut out)
            .expect("own f64 frame decodes");
        if codec.is_error_bounded() {
            for (i, (&d, &r)) in data.iter().zip(&out).enumerate() {
                let err = (d - r).abs();
                assert!(
                    err <= eb * (1.0 + 1e-6) + d.abs() * f64::EPSILON + f64::EPSILON,
                    "{} f64 idx {i}: |{d} - {r}| = {err}",
                    codec.name()
                );
            }
        }
    }
}

#[test]
fn empty_and_constant_inputs() {
    let registry = CodecRegistry::with_defaults();
    let mut scratch = CodecScratch::new();
    for codec in registry.codecs() {
        // Empty: a valid frame declaring zero elements.
        let out = roundtrip(codec, &[], 1e-2, &mut scratch);
        assert!(out.is_empty(), "{}", codec.name());
        // Constant: error-bounded codecs must reproduce within bound.
        let data = vec![0.125f32; 500];
        let out = roundtrip(codec, &data, 1e-2, &mut scratch);
        if codec.is_error_bounded() {
            assert!(
                out.iter().all(|&v| (v - 0.125).abs() <= 1e-2 + 1e-6),
                "{}: constant input must stay within bound",
                codec.name()
            );
        }
    }
}

#[test]
fn non_finite_inputs_never_panic() {
    // NaN/±Inf are outside every bound contract, but encoding them must
    // neither panic nor corrupt the frame structure: the frame still
    // parses, declares the right element count, and decodes to the right
    // length.
    let registry = CodecRegistry::with_defaults();
    let mut scratch = CodecScratch::new();
    let mut data: Vec<f32> = (0..200).map(|i| (i as f32 * 0.1).sin()).collect();
    data[3] = f32::NAN;
    data[77] = f32::INFINITY;
    data[150] = f32::NEG_INFINITY;
    for codec in registry.codecs() {
        let out = roundtrip(codec, &data, 1e-3, &mut scratch);
        assert_eq!(out.len(), data.len(), "{}", codec.name());
        // Finite elements far from the poisoned blocks stay bounded.
        if codec.is_error_bounded() {
            let (d, r) = (data[120], out[120]);
            assert!(
                (d as f64 - r as f64).abs() <= 1e-3 * (1.0 + 1e-6) + slack(d) + slack(r),
                "{}: finite element in a clean block must stay bounded",
                codec.name()
            );
        }
    }
}

#[test]
fn exact_length_validation() {
    // Every codec must reject both a truncated frame and a frame with
    // trailing bytes — length accounting is exact, never a lower bound.
    let registry = CodecRegistry::with_defaults();
    let mut scratch = CodecScratch::new();
    let data: Vec<f32> = (0..999).map(|i| (i as f32 * 0.07).sin() * 10.0).collect();
    for codec in registry.codecs() {
        let mut frame = Vec::new();
        codec.encode(&data, 1e-3, &mut scratch, &mut frame);
        assert!(codec.num_elements(&frame).is_ok(), "{}", codec.name());
        assert!(
            codec.num_elements(&frame[..frame.len() - 1]).is_err(),
            "{}: truncated frame must be rejected",
            codec.name()
        );
        let mut long = frame.clone();
        long.push(0);
        assert!(
            codec.num_elements(&long).is_err(),
            "{}: trailing bytes must be rejected",
            codec.name()
        );
        assert!(
            codec.num_elements(&frame[..4]).is_err(),
            "{}: sub-header frame must be rejected",
            codec.name()
        );
        assert!(
            codec.num_elements(b"NOTAFRAME___________________").is_err(),
            "{}: foreign magic must be rejected",
            codec.name()
        );
    }
}
