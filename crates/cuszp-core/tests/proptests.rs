//! Property tests for the cuSZp codec — the DESIGN.md §6 invariants.

use cuszp_core::{host_ref, Compressed, CuszpConfig};
use proptest::prelude::*;

/// Arbitrary finite f32 data with sane magnitudes for an f32 codec.
fn data_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        prop_oneof![
            3 => -1.0e6f32..1.0e6,
            1 => -1.0f32..1.0,
            1 => Just(0.0f32),
        ],
        1..600,
    )
}

fn eb_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![Just(1e-3), Just(1e-1), Just(1.0), Just(100.0), 1e-4f64..1e3,]
}

fn config_strategy() -> impl Strategy<Value = CuszpConfig> {
    (
        prop_oneof![Just(8usize), Just(16), Just(32), Just(64)],
        any::<bool>(),
    )
        .prop_map(|(block_len, lorenzo)| CuszpConfig {
            block_len,
            lorenzo,
            ..CuszpConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Invariant 1: the round trip respects the error bound, always.
    #[test]
    fn roundtrip_respects_bound(data in data_strategy(), eb in eb_strategy(), cfg in config_strategy()) {
        let c = host_ref::compress(&data, eb, cfg);
        let back: Vec<f32> = host_ref::decompress(&c);
        prop_assert_eq!(back.len(), data.len());
        for (i, (&d, &r)) in data.iter().zip(&back).enumerate() {
            let err = (d as f64 - r as f64).abs();
            // eb plus the f32-representability slack (see verify::check_bound).
            let slack = (d.abs().max(r.abs()) as f64) * 2.0f64.powi(-23);
            prop_assert!(
                err <= eb * (1.0 + 1e-6) + slack + f64::EPSILON,
                "index {}: |{} - {}| = {} > eb {}", i, d, r, err, eb
            );
        }
    }

    /// Invariant 2: recompressing a reconstruction is lossless (fixed point).
    #[test]
    fn recompression_is_fixed_point(data in data_strategy(), eb in eb_strategy()) {
        let cfg = CuszpConfig::default();
        let d1: Vec<f32> = host_ref::decompress(&host_ref::compress(&data, eb, cfg));
        let d2: Vec<f32> = host_ref::decompress(&host_ref::compress(&d1, eb, cfg));
        prop_assert_eq!(d1, d2);
    }

    /// Invariant 5: stream size = N_blocks + Σ (F_k+1)·L/8 exactly (Eq 2).
    #[test]
    fn stream_size_matches_eq2(data in data_strategy(), eb in eb_strategy(), cfg in config_strategy()) {
        let c = host_ref::compress(&data, eb, cfg);
        c.validate().unwrap();
        let eq2: u64 = c
            .fixed_lengths
            .iter()
            .map(|&f| if f == 0 { 0 } else { (f as u64 + 1) * cfg.block_len as u64 / 8 })
            .sum();
        prop_assert_eq!(c.stream_bytes(), c.fixed_lengths.len() as u64 + eq2);
    }

    /// Invariant 3: blocks whose quantization integers are all zero cost
    /// exactly one fixed-length byte.
    #[test]
    fn near_zero_data_is_zero_blocks(n in 1usize..300, eb in 0.5f64..10.0) {
        // All values strictly inside (−eb, eb) quantize to 0.
        let data: Vec<f32> = (0..n).map(|i| ((i % 7) as f32 - 3.0) * (eb as f32) * 0.12).collect();
        let c = host_ref::compress(&data, eb, CuszpConfig::default());
        prop_assert!(c.fixed_lengths.iter().all(|&f| f == 0));
        prop_assert_eq!(c.payload.len(), 0);
        prop_assert_eq!(c.stream_bytes(), c.num_blocks() as u64);
    }

    /// Serialization is total: to_bytes ∘ from_bytes = identity.
    #[test]
    fn serialization_roundtrip(data in data_strategy(), eb in eb_strategy(), cfg in config_strategy()) {
        let c = host_ref::compress(&data, eb, cfg);
        let back = Compressed::from_bytes(&c.to_bytes()).unwrap();
        prop_assert_eq!(back, c);
    }

    /// Corrupted headers never decode to Ok with wrong geometry (they
    /// error out rather than panic).
    #[test]
    fn header_corruption_is_detected(data in data_strategy(), flip in 0usize..28) {
        let c = host_ref::compress(&data, 0.1, CuszpConfig::default());
        let mut bytes = c.to_bytes();
        bytes[flip] ^= 0xFF;
        // Must not panic; any Ok result must still be structurally valid.
        if let Ok(parsed) = Compressed::from_bytes(&bytes) {
            prop_assert!(parsed.validate().is_ok());
        }
    }

    /// Lorenzo-off streams still round trip (ablation config).
    #[test]
    fn lorenzo_off_roundtrip(data in data_strategy(), eb in eb_strategy()) {
        let cfg = CuszpConfig { lorenzo: false, ..Default::default() };
        let c = host_ref::compress(&data, eb, cfg);
        let back: Vec<f32> = host_ref::decompress(&c);
        for (&d, &r) in data.iter().zip(&back) {
            let slack = (d.abs().max(r.abs()) as f64) * 2.0f64.powi(-23);
            prop_assert!((d as f64 - r as f64).abs() <= eb * (1.0 + 1e-6) + slack + f64::EPSILON);
        }
    }
}

/// Device/host equivalence on random-ish data (single deterministic case
/// kept outside proptest to keep kernel launches cheap in CI).
#[test]
fn device_stream_equals_host_stream_on_mixed_data() {
    use gpu_sim::{DeviceSpec, Gpu};
    let data: Vec<f32> = (0..10_000)
        .map(|i| {
            let x = i as f32;
            (x * 0.013).sin() * 500.0 + if i % 97 == 0 { 4000.0 } else { 0.0 }
        })
        .collect();
    for workers in [1, 3] {
        let mut gpu = Gpu::new(DeviceSpec::a100()).with_workers(workers);
        let input = gpu.h2d(&data);
        let cfg = CuszpConfig::default();
        let dc = cuszp_core::compress_kernel(&mut gpu, &input, 0.05, cfg);
        let dev = dc.to_host(&mut gpu);
        let host = host_ref::compress(&data, 0.05, cfg);
        assert_eq!(dev, host);
    }
}
