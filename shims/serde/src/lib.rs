//! Offline shim for `serde` — a value-tree serialization model.
//!
//! Instead of upstream serde's visitor architecture, [`Serialize`] maps a
//! value directly to a JSON-like [`Value`] tree; the `serde_json` shim
//! renders and parses that tree. [`Deserialize`] is a marker trait: the
//! workspace only ever deserializes untyped `serde_json::Value`s.
//!
//! The derive macros come from the sibling `serde_derive` shim and target
//! exactly this model.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so u64 > i64::MAX round-trips).
    UInt(u64),
    /// Floating point. Non-finite values render as `null`.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object — insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Is this an object?
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Is this an array?
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Render as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Render as pretty JSON (2-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // Keep a decimal point so the value re-parses as float.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&format!("{f}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write_json(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Value-tree serialization (shim model; derive with `#[derive(Serialize)]`).
pub trait Serialize {
    /// Convert to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Marker for deserializable types (the shim never deserializes typed data).
pub trait Deserialize {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {}
    )*};
}
impl_ser_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T> Deserialize for Vec<T> {}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic output
        Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_values() {
        assert_eq!(3u64.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert!(f64::NAN.to_value().to_json() == "null");
    }

    #[test]
    fn containers() {
        let v = vec![1u32, 2, 3].to_value();
        assert_eq!(v.to_json(), "[1,2,3]");
        assert_eq!(Some(5i64).to_value(), Value::Int(5));
        assert_eq!(Option::<i64>::None.to_value(), Value::Null);
    }

    #[test]
    fn pretty_printing_and_escapes() {
        let v = Value::Object(vec![
            ("a\"b".to_string(), Value::Int(1)),
            (
                "c".to_string(),
                Value::Array(vec![Value::Null, Value::Bool(false)]),
            ),
        ]);
        let s = v.to_json_pretty();
        assert!(s.contains("\"a\\\"b\": 1"));
        assert!(s.contains("null"));
    }
}
