//! Raw `.f32` file I/O in SDRBench's format: a flat little-endian stream of
//! IEEE-754 single-precision values with no header.

use crate::field::Field;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Write values as little-endian `f32` (the format `compx` consumes in the
/// paper's artifact appendix).
pub fn write_f32_le(path: &Path, data: &[f32]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for &v in data {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Read a little-endian `f32` stream.
///
/// Returns an error if the file length is not a multiple of 4.
pub fn read_f32_le(path: &Path) -> io::Result<Vec<f32>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() % 4 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("file length {} is not a multiple of 4", bytes.len()),
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Write a [`Field`]'s data (shape is not stored — SDRBench convention is
/// that dimensions travel out of band).
pub fn write_field(path: &Path, field: &Field) -> io::Result<()> {
    write_f32_le(path, &field.data)
}

/// Read a raw stream and wrap it as a 1-D field named after the file stem.
pub fn read_field_1d(path: &Path) -> io::Result<Field> {
    let data = read_f32_le(path)?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "field".to_string());
    let len = data.len();
    Ok(Field::new(name, vec![len], data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cuszp_io_test_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip.f32");
        let data = vec![1.0f32, -2.5, 3.25e-7, f32::MAX, 0.0];
        write_f32_le(&path, &data).unwrap();
        assert_eq!(read_f32_le(&path).unwrap(), data);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_truncated_file() {
        let path = tmp("bad.f32");
        std::fs::write(&path, [0u8; 7]).unwrap();
        assert!(read_f32_le(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn field_roundtrip_names_from_stem() {
        let path = tmp("myfield.f32");
        let f = Field::new("orig", vec![4], vec![1.0, 2.0, 3.0, 4.0]);
        write_field(&path, &f).unwrap();
        let back = read_field_1d(&path).unwrap();
        assert_eq!(back.data, f.data);
        assert!(back.name.contains("myfield"));
        std::fs::remove_file(&path).unwrap();
    }
}
