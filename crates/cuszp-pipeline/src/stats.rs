//! Per-stream and batch-level counters.
//!
//! A "stream" is one worker thread (the software analogue of a CUDA
//! stream). Counters are cheap enough to keep always-on: a few integer
//! adds per chunk plus one `Instant` pair.

use crate::CompressedField;
use serde::Serialize;

/// Counters for one worker/stream over the pipeline's lifetime.
#[derive(Debug, Clone, Serialize)]
pub struct StreamStats {
    /// Worker index.
    pub worker: usize,
    /// Chunks this stream compressed.
    pub chunks: u64,
    /// Original bytes consumed.
    pub bytes_in: u64,
    /// Compressed bytes produced (paper accounting: fraction ⓐ + ⓑ).
    pub bytes_out: u64,
    /// Wall-clock seconds spent compressing (excludes queue waits).
    pub busy_seconds: f64,
    /// Simulated GPU seconds from this stream's `gpu_sim` timeline
    /// (device mode only; 0 on the host path).
    pub sim_kernel_seconds: f64,
}

impl StreamStats {
    /// Fresh zeroed counters for worker `worker`.
    pub fn new(worker: usize) -> Self {
        StreamStats {
            worker,
            chunks: 0,
            bytes_in: 0,
            bytes_out: 0,
            busy_seconds: 0.0,
            sim_kernel_seconds: 0.0,
        }
    }

    /// This stream's busy-time compression throughput, GB/s.
    pub fn throughput_gbps(&self) -> f64 {
        if self.busy_seconds > 0.0 {
            self.bytes_in as f64 / self.busy_seconds / 1.0e9
        } else {
            0.0
        }
    }
}

/// Batch-level counters, assembled by [`crate::Pipeline::finish`].
#[derive(Debug, Clone, Serialize)]
pub struct BatchStats {
    /// Pipeline lifetime, seconds (creation to finish).
    pub wall_seconds: f64,
    /// Original bytes across all fields.
    pub bytes_in: u64,
    /// Compressed bytes across all fields (stream accounting).
    pub bytes_out: u64,
    /// Batch compression ratio.
    pub ratio: f64,
    /// Aggregate throughput over the wall clock, GB/s.
    pub throughput_gbps: f64,
    /// Mean submit-to-complete chunk latency, seconds.
    pub mean_chunk_latency_s: f64,
    /// Worst chunk latency, seconds.
    pub max_chunk_latency_s: f64,
    /// Per-stream counters, by worker index.
    pub streams: Vec<StreamStats>,
}

impl BatchStats {
    /// Roll field outputs + chunk latencies + worker counters into batch
    /// totals.
    pub(crate) fn collect(
        wall_seconds: f64,
        fields: &[CompressedField],
        chunk_latencies: &[f64],
        mut streams: Vec<StreamStats>,
    ) -> BatchStats {
        streams.sort_by_key(|s| s.worker);
        let bytes_in: u64 = fields.iter().map(|f| f.bytes_in).sum();
        let bytes_out: u64 = fields.iter().map(|f| f.container.stream_bytes()).sum();
        let n = chunk_latencies.len().max(1) as f64;
        BatchStats {
            wall_seconds,
            bytes_in,
            bytes_out,
            ratio: if bytes_out > 0 {
                bytes_in as f64 / bytes_out as f64
            } else {
                0.0
            },
            throughput_gbps: if wall_seconds > 0.0 {
                bytes_in as f64 / wall_seconds / 1.0e9
            } else {
                0.0
            },
            mean_chunk_latency_s: chunk_latencies.iter().sum::<f64>() / n,
            max_chunk_latency_s: chunk_latencies.iter().cloned().fold(0.0, f64::max),
            streams,
        }
    }

    /// Total chunks across all streams.
    pub fn chunks(&self) -> u64 {
        self.streams.iter().map(|s| s.chunks).sum()
    }
}
