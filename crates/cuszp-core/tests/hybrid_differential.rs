//! Differential property tests for the `CUSZPHY1` hybrid second stage.
//!
//! The invariant pinned here is stronger than "values round trip": the
//! hybrid framing must be invertible down to the serialized pre-stage
//! bytes. [`hybrid::decode_stream_bytes`] of any frame — whatever modes
//! the estimator (or a forced override) picked per chunk — reproduces
//! the plain `CUSZP1` stream byte for byte, so the second stage can
//! never change what the lossy layer said. Corruption of any single
//! byte, and truncation at any point, must yield a typed error (or a
//! still-valid frame), never a panic.

use cuszp_core::hybrid::{self, HybridRef, HybridScratch, Mode};
use cuszp_core::{fast, CuszpConfig};
use proptest::prelude::*;

fn data_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        prop_oneof![
            3 => -1.0e5f32..1.0e5,
            1 => -1.0f32..1.0,
            1 => Just(0.0f32),
        ],
        1..800,
    )
}

fn chunk_blocks_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(3), Just(7), Just(256)]
}

fn force_strategy() -> impl Strategy<Value = Option<Mode>> {
    prop_oneof![
        Just(None),
        Just(Some(Mode::Pass)),
        Just(Some(Mode::Constant)),
        Just(Some(Mode::Rle)),
        Just(Some(Mode::Huffman)),
        Just(Some(Mode::Huffman4)),
    ]
}

/// Build (plain stream bytes, hybrid frame bytes) for one input.
fn encode_pair(
    data: &[f32],
    eb: f64,
    cfg: CuszpConfig,
    chunk_blocks: usize,
    force: Option<Mode>,
) -> (Vec<u8>, Vec<u8>) {
    let mut scratch = fast::Scratch::new();
    let mut plain = Vec::new();
    let r = fast::compress_into(&mut scratch, data, eb, cfg, &mut plain);
    let mut hs = HybridScratch::new();
    let mut frame = Vec::new();
    hybrid::encode_with(&r, chunk_blocks, force, &mut hs, &mut frame);
    (plain, frame)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The hybrid stage is invertible to the exact plain serialization,
    /// for every chunk size and every (forced or adaptive) mode mix.
    #[test]
    fn frame_inverts_to_plain_stream(
        data in data_strategy(),
        eb in prop_oneof![Just(1e-3), Just(0.1), Just(10.0)],
        chunk_blocks in chunk_blocks_strategy(),
        force in force_strategy(),
    ) {
        let cfg = CuszpConfig::default();
        let (plain, frame) = encode_pair(&data, eb, cfg, chunk_blocks, force);
        let r = HybridRef::parse(&frame).expect("own frame parses");
        prop_assert_eq!(r.num_elements as usize, data.len());

        let mut hs = HybridScratch::new();
        let mut back = Vec::new();
        hybrid::decode_stream_bytes(&r, &mut hs, &mut back).expect("own frame decodes");
        prop_assert_eq!(&back, &plain, "second stage must invert byte-for-byte");

        // And the value path agrees with the plain decoder.
        let mut scratch = fast::Scratch::new();
        let mut vals = vec![0f32; data.len()];
        hybrid::decode_into(&r, &mut hs, &mut scratch, &mut vals).expect("values decode");
        let plain_ref = cuszp_core::CompressedRef::parse(&plain).expect("plain parses");
        let mut plain_vals = vec![0f32; data.len()];
        fast::decompress_into(plain_ref, &mut scratch, &mut plain_vals);
        prop_assert_eq!(vals, plain_vals);
    }

    /// Forcing a mode never changes what the frame decodes to — a mode
    /// that cannot represent a chunk must fall back, not corrupt.
    #[test]
    fn forced_modes_agree(
        data in data_strategy(),
        chunk_blocks in chunk_blocks_strategy(),
    ) {
        let cfg = CuszpConfig::default();
        let (plain, _) = encode_pair(&data, 0.01, cfg, chunk_blocks, None);
        for force in [
            Mode::Pass,
            Mode::Constant,
            Mode::Rle,
            Mode::Huffman,
            Mode::Huffman4,
        ] {
            let (_, frame) = encode_pair(&data, 0.01, cfg, chunk_blocks, Some(force));
            let r = HybridRef::parse(&frame).expect("own frame parses");
            let mut hs = HybridScratch::new();
            let mut back = Vec::new();
            hybrid::decode_stream_bytes(&r, &mut hs, &mut back).expect("own frame decodes");
            prop_assert_eq!(&back, &plain, "forced {:?} diverged", force);
        }
    }

    /// Single-byte corruption anywhere in the frame either fails with a
    /// typed error at parse or decode time, or leaves a frame that still
    /// decodes to the declared geometry. It never panics.
    #[test]
    fn corruption_never_panics(
        data in data_strategy(),
        chunk_blocks in chunk_blocks_strategy(),
        pos_seed in any::<u32>(),
        flip in 1u8..=255,
    ) {
        let (_, mut frame) = encode_pair(&data, 0.01, CuszpConfig::default(), chunk_blocks, None);
        let pos = pos_seed as usize % frame.len();
        frame[pos] ^= flip;
        if let Ok(r) = HybridRef::parse(&frame) {
            // Parse-surviving corruption must still be decode-safe.
            let mut hs = HybridScratch::new();
            let mut back = Vec::new();
            let _ = hybrid::decode_stream_bytes(&r, &mut hs, &mut back);
            if r.num_elements <= 1 << 20 {
                let mut scratch = fast::Scratch::new();
                let mut vals = vec![0f32; r.num_elements as usize];
                let _ = hybrid::decode_into(&r, &mut hs, &mut scratch, &mut vals);
            }
        }
    }

    /// Every strict prefix of a frame is rejected at parse time: length
    /// accounting is exact, so truncation cannot go unnoticed.
    #[test]
    fn truncation_is_detected(
        data in data_strategy(),
        chunk_blocks in chunk_blocks_strategy(),
        cut_seed in any::<u32>(),
    ) {
        let (_, frame) = encode_pair(&data, 0.01, CuszpConfig::default(), chunk_blocks, None);
        let cut = cut_seed as usize % frame.len();
        prop_assert!(HybridRef::parse(&frame[..cut]).is_err());
    }
}

/// The serialized convenience path: with `hybrid: true` the codec ships
/// whichever serialization is smaller, and the decoder sniffs the magic.
#[test]
fn serialized_hybrid_roundtrip_and_size() {
    use cuszp_core::{Cuszp, CuszpConfig, ErrorBound};
    let data: Vec<f32> = (0..50_000)
        .map(|i| (i as f32 * 0.002).sin() * 40.0)
        .collect();
    let plain_codec = Cuszp::new();
    let hybrid_codec = Cuszp::with_config(CuszpConfig {
        hybrid: true,
        ..CuszpConfig::default()
    });
    let plain = plain_codec.compress_serialized(&data, ErrorBound::Abs(1e-3));
    let hy = hybrid_codec.compress_serialized(&data, ErrorBound::Abs(1e-3));
    assert!(hy.len() <= plain.len(), "hybrid must never lose ratio");
    let a: Vec<f32> = plain_codec.decompress_serialized(&plain).unwrap();
    let b: Vec<f32> = hybrid_codec.decompress_serialized(&hy).unwrap();
    assert_eq!(a, b, "both serializations decode to the same values");
}
