//! Typed failure modes of the store layer.

use crate::codec::FormatId;
use cuszp_core::{DType, FormatError};

/// Errors opening or reading a shard.
///
/// Marked `#[non_exhaustive]`: the shard format is versioned and future
/// revisions may add failure modes, so downstream matches must keep a
/// wildcard arm. Every variant is reachable from bytes — the store
/// corruption tests construct each one from a concrete malformed shard.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Shard shorter than its own accounting claims.
    Truncated,
    /// Wrong index or footer magic.
    BadMagic,
    /// Index fields are internally inconsistent.
    Corrupt(&'static str),
    /// A chunk entry's byte range points past the payload region.
    IndexOutOfBounds {
        /// The offending chunk's linear id.
        chunk: usize,
    },
    /// A chunk entry's byte range overlaps the previous entry's.
    IndexOverlap {
        /// The offending chunk's linear id.
        chunk: usize,
    },
    /// No codec registered under this format id.
    UnknownCodec(FormatId),
    /// A chunk frame failed its codec's own validation.
    Frame(FormatError),
    /// A shape, origin, or extent argument is inconsistent.
    Shape(&'static str),
    /// The shard (or a frame inside it) stores a different element type
    /// than the one requested.
    DtypeMismatch {
        /// Element type recorded in the shard index or frame header.
        stored: DType,
        /// Element type the caller asked to read or write.
        requested: DType,
    },
    /// The codec cannot encode or decode the requested element type.
    UnsupportedDtype {
        /// Name of the codec that was asked.
        codec: &'static str,
        /// The element type it does not support.
        dtype: DType,
    },
    /// An I/O error opening or mapping a shard file (the kind is kept;
    /// the `std::io::Error` payload is not, so the variant stays
    /// comparable).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Truncated => write!(f, "shard truncated"),
            StoreError::BadMagic => write!(f, "not a cuSZp shard (bad magic)"),
            StoreError::Corrupt(why) => write!(f, "corrupt shard index: {why}"),
            StoreError::IndexOutOfBounds { chunk } => {
                write!(
                    f,
                    "chunk {chunk}: byte range points past the payload region"
                )
            }
            StoreError::IndexOverlap { chunk } => {
                write!(f, "chunk {chunk}: byte range overlaps the previous entry")
            }
            StoreError::UnknownCodec(id) => {
                write!(f, "no codec registered for format id {id:?}")
            }
            StoreError::Frame(e) => write!(f, "corrupt chunk frame: {e}"),
            StoreError::Shape(why) => write!(f, "bad shape: {why}"),
            StoreError::DtypeMismatch { stored, requested } => {
                write!(f, "shard stores {stored:?} but {requested:?} was requested")
            }
            StoreError::UnsupportedDtype { codec, dtype } => {
                write!(f, "codec {codec:?} does not support {dtype:?} elements")
            }
            StoreError::Io(kind) => write!(f, "shard i/o failed: {kind}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for StoreError {
    fn from(e: FormatError) -> Self {
        StoreError::Frame(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.kind())
    }
}
