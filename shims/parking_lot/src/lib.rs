//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface this workspace uses is provided: [`Mutex`] and
//! [`RwLock`] with panic-free (`lock()` → guard) signatures. Poisoning is
//! swallowed, which matches parking_lot semantics (its locks don't poison).

use std::sync::{self, PoisonError};

/// A mutex whose `lock` returns the guard directly (no `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison (parking_lot locks never poison).
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(l.into_inner(), 2);
    }
}
