//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` without syn/quote.
//!
//! Supports the shapes this workspace derives on: non-generic structs with
//! named fields (honouring `#[serde(skip)]`), tuple structs, unit structs,
//! and enums with unit / tuple / struct variants. The generated
//! `Serialize` impl targets the shim `serde`'s value-tree model
//! (`fn to_value(&self) -> serde::Value`); `Deserialize` is a marker impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Does an attribute token pair (`#` + `[...]`) say `serde(... skip ...)`?
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut toks = group.stream().into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.next() {
        Some(TokenTree::Group(inner)) => {
            let text = inner.stream().to_string();
            text.split(|c: char| !c.is_alphanumeric() && c != '_')
                .any(|w| w == "skip" || w == "skip_serializing")
        }
        _ => false,
    }
}

/// Consume leading attributes; return whether any was `#[serde(skip)]`.
fn eat_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Bracket {
                        skip |= attr_is_serde_skip(g);
                        *i += 1;
                        continue;
                    }
                }
                panic!("serde_derive shim: malformed attribute");
            }
            _ => break,
        }
    }
    skip
}

/// Consume a `pub` / `pub(...)` visibility prefix if present.
fn eat_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Split a brace/paren group's tokens on top-level commas.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut depth = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if depth == 0 && p.as_char() == ',' => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let mut fields = Vec::new();
    for piece in split_commas(group.stream()) {
        let mut i = 0usize;
        let skip = eat_attrs(&piece, &mut i);
        eat_vis(&piece, &mut i);
        let name = match piece.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    for piece in split_commas(group.stream()) {
        let mut i = 0usize;
        eat_attrs(&piece, &mut i);
        eat_vis(&piece, &mut i);
        let name = match piece.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match piece.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantKind::Tuple(split_commas(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Struct(parse_named_fields(g))
            }
            _ => VariantKind::Unit, // unit, possibly with `= discriminant`
        };
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Parsed {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    eat_attrs(&toks, &mut i);
    eat_vis(&toks, &mut i);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported (type {name})");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(split_commas(g.stream()).len())
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => panic!("serde_derive shim: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive on `{other}` items"),
    };
    Parsed { name, shape }
}

fn serialize_body(p: &Parsed) -> String {
    match &p.shape {
        Shape::NamedStruct(fields) => {
            let mut body =
                String::from("let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                if f.skip {
                    continue;
                }
                body.push_str(&format!(
                    "fields.push((String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            body.push_str("::serde::Value::Object(fields)");
            body
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let ty = &p.name;
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{ty}::{vn} => ::serde::Value::String(String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{ty}::{vn}(f0) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{ty}::{vn}({}) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{ty}::{vn} {{ {} }} => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Object(vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    }
}

/// Derive the shim `serde::Serialize` (value-tree model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = serialize_body(&parsed);
    let out = format!(
        "impl ::serde::Serialize for {} {{\n    fn to_value(&self) -> ::serde::Value {{\n{}\n    }}\n}}",
        parsed.name, body
    );
    out.parse()
        .expect("serde_derive shim: generated impl parses")
}

/// Derive the shim `serde::Deserialize` (marker impl — the workspace only
/// deserializes untyped `serde_json::Value`s).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    format!("impl ::serde::Deserialize for {} {{}}", parsed.name)
        .parse()
        .expect("serde_derive shim: generated impl parses")
}
