//! Kernel records and breakdown reports (the Nsight-equivalent).
//!
//! [`KernelRecord`] captures one launch with its per-step traffic; the
//! conversion from traffic to time lives here so the same formula serves
//! both the launcher and the breakdown figures. [`Breakdown`] reproduces the
//! paper's two breakdown views: end-to-end GPU/CPU/Memcpy shares (Fig 14)
//! and intra-kernel per-step shares (Fig 21).

use crate::counters::{StepTraffic, TrafficCounters};
use crate::device::DeviceSpec;
use crate::timing::Timeline;
use serde::{Deserialize, Serialize};

/// One kernel launch: name, geometry, per-step traffic, and its simulated
/// duration (including the fixed launch overhead).
#[derive(Debug, Clone)]
pub struct KernelRecord {
    /// Kernel name (for reports).
    pub name: &'static str,
    /// Number of thread blocks launched.
    pub grid: usize,
    /// Total simulated duration, seconds, `launch_overhead` included.
    pub time: f64,
    /// The fixed launch-latency component of `time`.
    pub launch_overhead: f64,
    /// Per-step traffic merged across all blocks.
    pub steps: TrafficCounters,
}

/// Convert one step's traffic into simulated seconds under `spec`.
///
/// Memory and compute overlap on a GPU, so the step cost is
/// `max(memory time, compute time)`; strided traffic is charged at
/// `mem_bandwidth * strided_efficiency`.
pub fn step_time(spec: &DeviceSpec, t: &StepTraffic) -> f64 {
    let coalesced = (t.bytes_read + t.bytes_written) as f64 / spec.mem_bandwidth;
    let strided = (t.bytes_read_strided + t.bytes_written_strided) as f64
        / (spec.mem_bandwidth * spec.strided_efficiency);
    let mem = coalesced + strided;
    let compute = t.ops as f64 / spec.effective_compute;
    mem.max(compute)
}

/// Convert a whole launch's counters into body time (no launch overhead).
pub fn kernel_body_time(spec: &DeviceSpec, counters: &TrafficCounters) -> f64 {
    counters.iter().map(|(_, t)| step_time(spec, t)).sum()
}

/// Share of time attributed to one named step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepShare {
    /// Step name.
    pub step: String,
    /// Simulated seconds.
    pub time: f64,
    /// Fraction of the parent total, in [0, 1].
    pub fraction: f64,
}

/// End-to-end time split into the paper's three categories (Fig 14), plus
/// per-step kernel shares (Fig 21).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Breakdown {
    /// Kernel-body time (paper: "GPU").
    pub gpu: f64,
    /// Serial host time (paper: "CPU").
    pub cpu: f64,
    /// PCIe transfer time (paper: "Memcpy").
    pub memcpy: f64,
    /// Fixed kernel-launch overhead (folded into "GPU" by the paper's
    /// methodology; reported separately here for transparency).
    pub launch_overhead: f64,
    /// Per-step shares across all kernels in the window.
    pub steps: Vec<StepShare>,
}

impl Breakdown {
    /// Build a breakdown from a timeline window under `spec`.
    pub fn from_timeline(spec: &DeviceSpec, tl: &Timeline) -> Self {
        let mut merged = TrafficCounters::new();
        for k in tl.kernels() {
            merged.merge(&k.steps);
        }
        let step_total: f64 = merged.iter().map(|(_, t)| step_time(spec, t)).sum();
        let steps = merged
            .iter()
            .map(|(name, t)| {
                let time = step_time(spec, t);
                StepShare {
                    step: name.to_string(),
                    time,
                    fraction: if step_total > 0.0 {
                        time / step_total
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        Breakdown {
            gpu: tl.gpu_time(),
            cpu: tl.cpu_time(),
            memcpy: tl.memcpy_time(),
            launch_overhead: tl.launch_overhead_time(),
            steps,
        }
    }

    /// Total end-to-end time of the window.
    pub fn total(&self) -> f64 {
        self.gpu + self.cpu + self.memcpy + self.launch_overhead
    }

    /// GPU share of end-to-end time (launch overhead counted as GPU, as the
    /// paper does), in [0, 1].
    pub fn gpu_fraction(&self) -> f64 {
        let t = self.total();
        if t > 0.0 {
            (self.gpu + self.launch_overhead) / t
        } else {
            0.0
        }
    }

    /// CPU share of end-to-end time, in [0, 1].
    pub fn cpu_fraction(&self) -> f64 {
        let t = self.total();
        if t > 0.0 {
            self.cpu / t
        } else {
            0.0
        }
    }

    /// Memcpy share of end-to-end time, in [0, 1].
    pub fn memcpy_fraction(&self) -> f64 {
        let t = self.total();
        if t > 0.0 {
            self.memcpy / t
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_time_is_max_of_mem_and_compute() {
        let spec = DeviceSpec::a100();
        // Memory-bound step.
        let t = StepTraffic {
            bytes_read: 1_400_000_000_000,
            ..Default::default()
        };
        assert!((step_time(&spec, &t) - 1.0).abs() < 1e-9);
        // Compute-bound step.
        let t = StepTraffic {
            ops: (1.55e12) as u64,
            ..Default::default()
        };
        assert!((step_time(&spec, &t) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn strided_traffic_costs_more() {
        let spec = DeviceSpec::a100();
        let coalesced = StepTraffic {
            bytes_written: 1_000_000,
            ..Default::default()
        };
        let strided = StepTraffic {
            bytes_written_strided: 1_000_000,
            ..Default::default()
        };
        assert!(step_time(&spec, &strided) > step_time(&spec, &coalesced) * 3.0);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let spec = DeviceSpec::a100();
        let mut tl = Timeline::new();
        let mut counters = TrafficCounters::new();
        counters.read("a", 1_000_000);
        counters.write("b", 2_000_000);
        let body = kernel_body_time(&spec, &counters);
        tl.push_kernel(KernelRecord {
            name: "k",
            grid: 4,
            time: body + spec.kernel_launch_overhead,
            launch_overhead: spec.kernel_launch_overhead,
            steps: counters,
        });
        tl.push_cpu("host", 1000, 1e-3);
        tl.push_memcpy(crate::timing::CopyDir::D2H, 100, 1e-4, "x");
        let b = Breakdown::from_timeline(&spec, &tl);
        let sum = b.gpu_fraction() + b.cpu_fraction() + b.memcpy_fraction();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(b.steps.len(), 2);
        let frac_sum: f64 = b.steps.iter().map(|s| s.fraction).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let spec = DeviceSpec::a100();
        let tl = Timeline::new();
        let b = Breakdown::from_timeline(&spec, &tl);
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.gpu_fraction(), 0.0);
    }
}
