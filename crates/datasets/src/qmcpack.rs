//! QMCPack stand-in (quantum Monte Carlo, 4-D 288×115×69×69, 2 fields).
//!
//! The real data are per-orbital wavefunction amplitudes on a 3-D grid
//! stacked along the first axis: smooth oscillatory lobes under a decaying
//! envelope, with most of the volume near zero. This makes QMCPack very
//! compressible at loose bounds (Table 3: avg CR ≈ 91.7 at REL 1e-1) but
//! hard at tight bounds (avg ≈ 4.68 at REL 1e-4) — the oscillations carry
//! real information at small amplitude.

use crate::field::Field;
use crate::spectral::{gaussian_random_field, rescale_signed, seed_from, GrfSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Field names (the archive ships two packed orbital files).
pub const FIELDS: [&str; 2] = ["einspline_288_115_69_69", "einspline_288_115_69_69_f"];

/// Generate one QMCPack field at a 4-D shape `[orbitals, nz, ny, nx]`.
pub fn field(name: &str, shape: &[usize]) -> Field {
    assert_eq!(shape.len(), 4, "QMCPack fields are 4-D");
    let seed = seed_from(&["qmcpack", name]);
    let mut rng = SmallRng::seed_from_u64(seed);
    let (orbitals, nz, ny, nx) = (shape[0], shape[1], shape[2], shape[3]);
    let per_orb = nz * ny * nx;
    let mut data = vec![0.0f32; orbitals * per_orb];

    // A shared small-scale oscillation texture keeps generation affordable;
    // each orbital modulates it with its own envelope and wavenumber.
    let texture = gaussian_random_field(
        &[nz, ny, nx],
        &GrfSpec {
            modes: 64,
            slope: 2.6,
            k_max: crate::spectral::k_for(&[nz, ny, nx], 14.0),
            noise: 0.0,
            anisotropy: [1.5, 1.2, 1.0, 1.0],
        },
        seed ^ 0x9e37_79b9,
    );
    // Low-amplitude wavefunction background present everywhere (~2% of the
    // final range): large enough to defeat cuSZx's constant blocks at
    // REL 1e-2 (Table 3: cuSZx collapses to ~5.9 while cuSZp holds ~17),
    // small enough to quantize away at REL 1e-1 (both reach high CRs).
    let background = gaussian_random_field(
        &[nz, ny, nx],
        &GrfSpec {
            modes: 48,
            slope: 2.4,
            k_max: crate::spectral::k_for(&[nz, ny, nx], 6.0),
            noise: 0.0,
            anisotropy: [1.5, 1.2, 1.0, 1.0],
        },
        seed ^ 0x51f0_aa11,
    );

    // Orbital amplitudes span decades (occupation/energy ordering): most
    // orbitals quantize away entirely at loose REL bounds — the source of
    // QMCPack's very high CR at REL 1e-1 (paper: 91.73). Drawn up front so
    // the global background can be sized relative to the final range.
    let amps: Vec<f64> = (0..orbitals)
        .map(|_| {
            let g: f64 = (0..6).map(|_| rng.gen_range(-0.5..0.5f64)).sum::<f64>() / 0.707;
            (1.6 * g).exp()
        })
        .collect();
    let max_amp = amps.iter().cloned().fold(f64::MIN, f64::max);
    // Global wavefunction background, ~2% of the final value range:
    // defeats cuSZx's constant blocks at REL <= 1e-2 (its 128-value blocks
    // see a swing above 2eb) while staying below a REL 1e-1 bound.
    let bg_scale = 0.048 * max_amp;

    for orb in 0..orbitals {
        // Each orbital: 1-3 Gaussian lobes at random sites, oscillating.
        let lobes = rng.gen_range(1..=3);
        let centers: Vec<[f64; 3]> = (0..lobes)
            .map(|_| {
                [
                    rng.gen_range(0.15..0.85),
                    rng.gen_range(0.15..0.85),
                    rng.gen_range(0.15..0.85),
                ]
            })
            .collect();
        // Lobe widths and oscillation wavelengths are fixed in *cells* so
        // the per-sample smoothness (what the compressors see) is the same
        // at every generation scale.
        let width: f64 = rng.gen_range(0.12..0.25);
        let osc_k: f64 = rng.gen_range(0.6..1.1) * crate::spectral::k_for(&[nz, ny, nx], 16.0);
        let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        let amp = amps[orb];

        let out = &mut data[orb * per_orb..(orb + 1) * per_orb];
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let p = [
                        z as f64 / nz as f64,
                        y as f64 / ny as f64,
                        x as f64 / nx as f64,
                    ];
                    let mut env = 0.0f64;
                    for c in &centers {
                        let r2 =
                            (p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2) + (p[2] - c[2]).powi(2);
                        env += (-r2 / (2.0 * width * width)).exp();
                    }
                    let radial = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
                    let osc = (std::f64::consts::TAU * osc_k * radial + phase).cos();
                    let idx = (z * ny + y) * nx + x;
                    // The background is a *global* property of the stored
                    // wavefunction data, independent of orbital amplitude.
                    out[idx] = (amp * sign * env * (0.7 * osc + 0.3 * texture[idx] as f64)
                        + bg_scale * background[idx] as f64) as f32;
                }
            }
        }
    }
    // Zero-preserving: wavefunction bulk sits at zero and must stay there —
    // an affine rescale shifts it whenever the raw extremes are asymmetric.
    rescale_signed(&mut data, -2.92, 3.38);
    Field::new(name, shape.to_vec(), data)
}

/// Generate the 2-field dataset at `shape`.
pub fn generate(shape: &[usize]) -> Vec<Field> {
    FIELDS.iter().map(|name| field(name, shape)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: [usize; 4] = [4, 8, 12, 12];

    #[test]
    fn two_4d_fields() {
        let fields = generate(&SHAPE);
        assert_eq!(fields.len(), 2);
        for f in &fields {
            assert_eq!(f.ndim(), 4);
            assert_eq!(f.len(), 4 * 8 * 12 * 12);
        }
    }

    #[test]
    fn mass_concentrated_near_zero() {
        // Needs enough orbitals for the amplitude spread to matter; tiny
        // 6-orbital grids are dominated by the background.
        let f = field(FIELDS[0], &[12, 20, 20, 20]);
        let range = f.value_range();
        let small = f.data.iter().filter(|&&v| v.abs() < 0.1 * range).count();
        assert!(
            small > f.len() / 2,
            "orbitals should be near-zero over much of the box: {}/{}",
            small,
            f.len()
        );
    }

    #[test]
    fn signed_values_exist() {
        let f = field(FIELDS[0], &SHAPE);
        assert!(f.data.iter().any(|&v| v < 0.0));
        assert!(f.data.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn deterministic() {
        assert_eq!(field(FIELDS[1], &SHAPE), field(FIELDS[1], &SHAPE));
    }

    #[test]
    #[should_panic]
    fn rejects_non_4d() {
        field(FIELDS[0], &[8, 8, 8]);
    }
}
