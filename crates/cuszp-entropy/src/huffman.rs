//! Canonical, length-limited Huffman coding over bytes.
//!
//! The chunk layout is a 128-byte packed-nibble code-length table (one
//! 4-bit length per symbol, low nibble = even symbol) followed by the
//! MSB-first bitstream. Lengths are capped at
//! [`HUFFMAN_MAX_CODE_LEN`] = 12 bits so the decoder is a single lookup
//! into a 4096-entry table — the table-driven decode the hybrid frame's
//! throughput numbers depend on. Codes are *canonical*: the lengths fully
//! determine the codebook (assigned in `(length, symbol)` order), so the
//! table is the entire header and encoder and decoder can never disagree
//! on code values.
//!
//! The builder is the classic two-queue merge over frequency-sorted
//! leaves (linear after the sort), followed by a Kraft-sum repair that
//! deepens the longest under-limit code until the capped lengths are
//! prefix-decodable again. Everything runs in fixed-size stack arrays —
//! no allocation, no recursion.
//!
//! The decoder uses a **multi-symbol** table (Fabian Giesen's
//! "reading bits in far too many ways" construction): each 12-bit prefix
//! entry carries up to two decoded symbols when both codes fit the
//! window, so skewed chunks — short codes, exactly the ones the
//! estimator routes here — emit two bytes per table hit. The same table
//! drives the four interleaved streams of [`crate::Mode::Huffman4`]
//! (see `interleave.rs`).

use crate::{histogram, EntropyError, Tier};

/// Size of the packed-nibble code-length table that heads every chunk.
pub const HUFFMAN_TABLE_BYTES: usize = 128;

/// Maximum code length in bits; also the decode-table index width.
pub const HUFFMAN_MAX_CODE_LEN: u32 = 12;

pub(crate) const LIMIT: u8 = HUFFMAN_MAX_CODE_LEN as u8;
pub(crate) const TABLE_SIZE: usize = 1 << HUFFMAN_MAX_CODE_LEN;

/// Append the coded form of `raw` (table + bitstream) to `out` **iff** it
/// is strictly smaller than `raw`; returns whether it was appended. The
/// exact coded size is known from the code lengths before any byte is
/// written, so a losing encode costs the histogram pass only.
pub(crate) fn encode(tier: Tier, raw: &[u8], out: &mut Vec<u8>) -> bool {
    debug_assert!(!raw.is_empty());
    let freq = histogram::histogram(tier, raw);
    let mut lens = [0u8; 256];
    build_lengths(&freq, &mut lens);

    let total_bits: u64 = freq
        .iter()
        .zip(lens.iter())
        .map(|(&f, &l)| u64::from(f) * u64::from(l))
        .sum();
    let coded = HUFFMAN_TABLE_BYTES as u64 + total_bits.div_ceil(8);
    if coded >= raw.len() as u64 {
        return false;
    }

    out.reserve(coded as usize + 7);
    push_lens_table(&lens, out);
    let codes = assign_codes(&lens);
    let base = out.len();
    let stream = coded as usize - HUFFMAN_TABLE_BYTES;
    out.resize(base + stream + 7, 0); // 7 bytes of WideWriter slack
    let mut w = WideWriter::at(base);
    for &b in raw {
        w.put(lens[b as usize], codes[b as usize], out);
    }
    debug_assert_eq!(w.end(), base + stream, "coded size precomputation");
    out.truncate(base + stream);
    true
}

/// Append the packed-nibble form of `lens` (low nibble = even symbol).
pub(crate) fn push_lens_table(lens: &[u8; 256], out: &mut Vec<u8>) {
    for i in 0..HUFFMAN_TABLE_BYTES {
        out.push(lens[2 * i] | (lens[2 * i + 1] << 4));
    }
}

/// Unpack a 128-byte nibble table into per-symbol lengths and validate
/// the global invariants shared by the 1-way and 4-way chunk forms:
/// every length ≤ [`LIMIT`] and the Kraft sum ≤ 1. Returns the lengths
/// plus the number of coded symbols (0 for an empty table — legal only
/// when nothing is to be decoded; the caller enforces that).
pub(crate) fn parse_lens_table(table: &[u8]) -> Result<([u8; 256], u32), EntropyError> {
    debug_assert_eq!(table.len(), HUFFMAN_TABLE_BYTES);
    let mut lens = [0u8; 256];
    for (i, &b) in table.iter().enumerate() {
        lens[2 * i] = b & 0x0F;
        lens[2 * i + 1] = b >> 4;
    }
    let mut kraft: u64 = 0;
    let mut nonzero = 0u32;
    for &l in &lens {
        if l > LIMIT {
            return Err(EntropyError("huffman code length exceeds limit"));
        }
        if l > 0 {
            kraft += 1u64 << (LIMIT - l);
            nonzero += 1;
        }
    }
    if nonzero > 0 && kraft > 1u64 << LIMIT {
        return Err(EntropyError("huffman table overfull"));
    }
    Ok((lens, nonzero))
}

/// Flat multi-symbol decode table over 12-bit prefixes.
///
/// Entry layout (`u32`): bits 0–7 first symbol, 8–15 second symbol,
/// 16–19 first code's length, 20–24 total consumed bits, bit 25 set when
/// the entry carries two symbols. A zero entry marks a prefix no valid
/// stream can produce.
pub(crate) struct DecodeTable {
    entries: [u32; TABLE_SIZE],
}

impl DecodeTable {
    /// Outputs below this many bytes skip the two-symbol graft pass:
    /// the graft costs a full sweep of the 4096-entry table, which only
    /// pays for itself once the symbol loop it accelerates is longer
    /// than the sweep. Tables with and without the graft decode to
    /// identical bytes — the flag trades build time against per-lookup
    /// yield, never output.
    pub(crate) const GRAFT_MIN_SYMBOLS: usize = 4096;

    /// Build the table from validated lengths (Kraft ≤ 1, all ≤ 12).
    /// `two_symbol` enables the multi-symbol graft pass.
    pub(crate) fn build(lens: &[u8; 256], two_symbol: bool) -> Result<DecodeTable, EntropyError> {
        let codes = assign_codes(lens);
        let mut entries = [0u32; TABLE_SIZE];
        for s in 0..256 {
            let l = lens[s];
            if l == 0 {
                continue;
            }
            let span = 1usize << (LIMIT - l);
            let base = (codes[s] as usize) << (LIMIT - l);
            // Kraft ≤ 1 guarantees canonical codes fit; belt and braces.
            if base + span > TABLE_SIZE {
                return Err(EntropyError("huffman table overfull"));
            }
            let e = s as u32 | u32::from(l) << 16 | u32::from(l) << 20;
            entries[base..base + span].fill(e);
        }
        if !two_symbol {
            return Ok(DecodeTable { entries });
        }
        // Second pass: graft a second symbol onto every prefix whose
        // first code leaves room for a complete follow-up code. The
        // augmentation only reads the sym0/len0 fields, which it never
        // modifies, so it can run in place.
        for p in 0..TABLE_SIZE {
            let e = entries[p];
            if e == 0 {
                continue;
            }
            let l1 = (e >> 16) & 0xF;
            if l1 >= HUFFMAN_MAX_CODE_LEN {
                continue;
            }
            // After consuming l1 bits, the known remainder of the window
            // is its low 12−l1 bits, zero-extended: a second entry whose
            // code length fits that remainder is fully determined.
            let p2 = (p << l1) & (TABLE_SIZE - 1);
            let e2 = entries[p2];
            if e2 == 0 {
                continue;
            }
            let l2 = (e2 >> 16) & 0xF;
            if l1 + l2 <= HUFFMAN_MAX_CODE_LEN {
                entries[p] = (e & 0x000F_00FF) | (e2 & 0xFF) << 8 | (l1 + l2) << 20 | 1 << 25;
            }
        }
        Ok(DecodeTable { entries })
    }

    #[inline(always)]
    pub(crate) fn entry(&self, peek: usize) -> u32 {
        self.entries[peek]
    }
}

/// Branchless MSB-first bit writer over a pre-sized region of a byte
/// buffer. Bits are kept left-aligned in `acc` (the next bit to write
/// is bit 63) and every `put` unconditionally stores 8 big-endian
/// bytes, so the hot path has no data-dependent flush branch — the
/// branch in the classic accumulate-and-flush writer mispredicts on
/// real code-length mixes and dominates encode time. A store may run up
/// to 7 bytes past the write cursor; the spilled bytes are always zero
/// (only counted bits are nonzero in `acc`), so callers need only
/// guarantee 7 bytes of slack after the region — either the next
/// stream's region, written afterwards, or buffer padding truncated at
/// the end.
pub(crate) struct WideWriter {
    acc: u64,
    have: u32,
    pos: usize,
}

impl WideWriter {
    pub(crate) fn at(pos: usize) -> WideWriter {
        WideWriter {
            acc: 0,
            have: 0,
            pos,
        }
    }

    #[inline(always)]
    pub(crate) fn put(&mut self, len: u8, code: u16, out: &mut [u8]) {
        debug_assert!((1..=LIMIT).contains(&len), "coded symbols have a length");
        // have ≤ 7 between puts and len ≤ 12, so the shift is ≥ 45.
        self.acc |= u64::from(code) << (64 - self.have - u32::from(len));
        self.have += u32::from(len);
        out[self.pos..self.pos + 8].copy_from_slice(&self.acc.to_be_bytes());
        let adv = self.have >> 3;
        self.pos += adv as usize;
        self.acc <<= adv * 8;
        self.have &= 7;
    }

    /// One past the final (possibly partial, zero-padded) byte — the
    /// partial byte is already stored by the last `put`.
    pub(crate) fn end(&self) -> usize {
        self.pos + usize::from(self.have > 0)
    }
}

/// One MSB-first bit reader with word-at-a-time refill. `acc` holds
/// `have` valid bits in its low positions; refill keeps `have` ≥ 12
/// while input bytes remain, loading 32 bits at a time away from the
/// tail.
pub(crate) struct BitReader {
    pub(crate) acc: u64,
    pub(crate) have: u32,
    pub(crate) next: usize,
}

impl BitReader {
    /// Top up to ≥ 12 valid bits (best effort near the stream tail).
    #[inline(always)]
    pub(crate) fn refill(&mut self, bits: &[u8]) {
        if self.have < HUFFMAN_MAX_CODE_LEN {
            if self.next + 4 <= bits.len() {
                let w = u32::from_be_bytes(
                    bits[self.next..self.next + 4]
                        .try_into()
                        .expect("bounds checked"),
                );
                self.acc = (self.acc << 32) | u64::from(w);
                self.next += 4;
                self.have += 32;
            } else {
                while self.have < HUFFMAN_MAX_CODE_LEN && self.next < bits.len() {
                    self.acc = (self.acc << 8) | u64::from(bits[self.next]);
                    self.next += 1;
                    self.have += 8;
                }
            }
        }
    }

    /// The next 12 bits MSB-first (zero-extended past the stream end).
    #[inline(always)]
    pub(crate) fn peek(&self) -> usize {
        if self.have >= HUFFMAN_MAX_CODE_LEN {
            (self.acc >> (self.have - HUFFMAN_MAX_CODE_LEN)) as usize & (TABLE_SIZE - 1)
        } else {
            ((self.acc << (HUFFMAN_MAX_CODE_LEN - self.have)) as usize) & (TABLE_SIZE - 1)
        }
    }

    /// End-of-stream validation shared by every stream form: all input
    /// bytes consumed, less than one byte of slack, and the slack (the
    /// encoder's final-byte padding) all zero.
    pub(crate) fn finish(&self, bits: &[u8]) -> Result<(), EntropyError> {
        if self.next != bits.len() || self.have >= 8 {
            return Err(EntropyError("huffman trailing bytes"));
        }
        if self.have > 0 && self.acc & ((1u64 << self.have) - 1) != 0 {
            return Err(EntropyError("huffman padding not zero"));
        }
        Ok(())
    }
}

/// Decode a chunk produced by [`encode`] into `out` (whose length is the
/// chunk's recorded raw length). Every malformation — truncated table,
/// over-limit or Kraft-overfull lengths, a bit pattern matching no code,
/// a bitstream that ends early or carries unused bytes or non-zero
/// padding — is a typed [`EntropyError`].
pub(crate) fn decode(comp: &[u8], out: &mut [u8]) -> Result<(), EntropyError> {
    if comp.len() < HUFFMAN_TABLE_BYTES {
        return Err(EntropyError("huffman table truncated"));
    }
    let (lens, nonzero) = parse_lens_table(&comp[..HUFFMAN_TABLE_BYTES])?;
    let bits = &comp[HUFFMAN_TABLE_BYTES..];
    if out.is_empty() {
        return if bits.is_empty() {
            Ok(())
        } else {
            Err(EntropyError("huffman trailing bytes"))
        };
    }
    if nonzero == 0 {
        return Err(EntropyError("huffman table empty"));
    }
    let tab = DecodeTable::build(&lens, out.len() >= DecodeTable::GRAFT_MIN_SYMBOLS)?;

    // Fast path: branchless refill (Fabian Giesen's variant — one
    // unconditional 8-byte big-endian load per lookup, accumulator kept
    // left-aligned) and an unconditional two-byte store. The refill
    // branch and the 1-vs-2-symbol branch are data-dependent and
    // mispredict constantly in the careful loop below; here the only
    // branches are the loop bounds (always-taken) and the rare invalid
    // code. Entries consume `ltot` ≤ 12 bits whether they carry one
    // symbol or two (a 1-symbol entry has `ltot == l1`), and a 1-symbol
    // entry's second byte is dead weight the next store overwrites.
    let n = out.len();
    let mut acc: u64 = 0; // bits left-aligned: next bit is bit 63
    let mut have: u32 = 0;
    let mut next = 0usize;
    let mut o = 0usize;
    while o + 1 < n && next + 8 <= bits.len() {
        let w = u64::from_be_bytes(bits[next..next + 8].try_into().expect("bounds checked"));
        acc |= w >> have;
        next += ((63 - have) >> 3) as usize;
        have |= 56;
        let e = tab.entry((acc >> (64 - HUFFMAN_MAX_CODE_LEN)) as usize);
        if e == 0 {
            return Err(EntropyError("invalid huffman code"));
        }
        let ltot = (e >> 20) & 0x1F;
        out[o] = e as u8;
        out[o + 1] = (e >> 8) as u8;
        o += 1 + ((e >> 25) & 1) as usize;
        acc <<= ltot;
        have -= ltot;
    }

    // Careful tail: byte-accurate refill, exact end-of-stream checks.
    // The left-aligned accumulator converts to the low-aligned reader
    // exactly (same counted bits, same byte cursor, same consumed-bit
    // total 8·next − have).
    let mut br = BitReader {
        acc: if have > 0 { acc >> (64 - have) } else { 0 },
        have,
        next,
    };
    while o < n {
        br.refill(bits);
        let e = tab.entry(br.peek());
        if e == 0 {
            return Err(EntropyError("invalid huffman code"));
        }
        let ltot = (e >> 20) & 0x1F;
        if e & (1 << 25) != 0 && ltot <= br.have && o + 1 < n {
            // Two symbols per lookup: output is sequential here, so both
            // land directly.
            out[o] = e as u8;
            out[o + 1] = (e >> 8) as u8;
            o += 2;
            br.have -= ltot;
        } else {
            let l1 = (e >> 16) & 0xF;
            if l1 > br.have {
                return Err(EntropyError("huffman bitstream truncated"));
            }
            out[o] = e as u8;
            o += 1;
            br.have -= l1;
        }
    }
    br.finish(bits)
}

/// Optimal code lengths for `freq`, then capped to [`LIMIT`] with a
/// Kraft-sum repair. Zero-frequency symbols get length 0.
pub(crate) fn build_lengths(freq: &[u32; 256], lens: &mut [u8; 256]) {
    let mut leaves = [(0u32, 0u16); 256];
    let mut n = 0usize;
    for (s, &f) in freq.iter().enumerate() {
        if f > 0 {
            leaves[n] = (f, s as u16);
            n += 1;
        }
    }
    if n == 0 {
        return;
    }
    if n == 1 {
        lens[leaves[0].1 as usize] = 1;
        return;
    }
    leaves[..n].sort_unstable();

    // Two-queue merge: leaves ascending in 0..n, internal nodes appended
    // in creation (hence weight) order — both queues stay sorted, so the
    // two global minima are always at one of the two fronts.
    let total = 2 * n - 1;
    let mut weight = [0u64; 511];
    let mut parent = [0u16; 511];
    for (i, &(f, _)) in leaves[..n].iter().enumerate() {
        weight[i] = u64::from(f);
    }
    let mut leaf = 0usize;
    let mut node = n;
    for next in n..total {
        let mut take = |next: usize| {
            if leaf < n && (node >= next || weight[leaf] <= weight[node]) {
                leaf += 1;
                leaf - 1
            } else {
                node += 1;
                node - 1
            }
        };
        let a = take(next);
        let b = take(next);
        weight[next] = weight[a] + weight[b];
        parent[a] = next as u16;
        parent[b] = next as u16;
    }
    // Children precede parents, so one reverse sweep yields all depths.
    let mut depth = [0u8; 511];
    for i in (0..total - 1).rev() {
        depth[i] = depth[parent[i] as usize] + 1;
    }
    for (i, &(_, s)) in leaves[..n].iter().enumerate() {
        lens[s as usize] = depth[i].min(LIMIT);
    }

    // Capping can overfill the Kraft sum; deepen the longest under-limit
    // code until Σ 2^(LIMIT−len) ≤ 2^LIMIT again. Each step frees
    // 2^(LIMIT−l−1), and while overfull some code sits below the limit,
    // so this terminates with prefix-decodable lengths.
    let mut kraft: u64 = lens
        .iter()
        .filter(|&&l| l > 0)
        .map(|&l| 1u64 << (LIMIT - l))
        .sum();
    while kraft > 1u64 << LIMIT {
        let mut pick = (0u8, 0usize);
        for (s, &l) in lens.iter().enumerate() {
            if l > pick.0 && l < LIMIT {
                pick = (l, s);
            }
        }
        debug_assert!(pick.0 > 0, "overfull Kraft sum with all codes at limit");
        lens[pick.1] += 1;
        kraft -= 1u64 << (LIMIT - pick.0 - 1);
    }
}

/// Canonical code values from lengths: codes are assigned in `(length,
/// symbol)` order, the shortest length starting at 0.
pub(crate) fn assign_codes(lens: &[u8; 256]) -> [u16; 256] {
    let mut bl_count = [0u32; LIMIT as usize + 1];
    for &l in lens {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next = [0u32; LIMIT as usize + 1];
    let mut code = 0u32;
    for l in 1..=LIMIT as usize {
        code = (code + bl_count[l - 1]) << 1;
        next[l] = code;
    }
    let mut codes = [0u16; 256];
    for (s, &l) in lens.iter().enumerate() {
        if l > 0 {
            codes[s] = next[l as usize] as u16;
            next[l as usize] += 1;
        }
    }
    codes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(raw: &[u8]) -> Option<Vec<u8>> {
        let mut comp = Vec::new();
        if !encode(Tier::detect(), raw, &mut comp) {
            return None;
        }
        assert!(comp.len() < raw.len());
        let mut back = vec![0u8; raw.len()];
        decode(&comp, &mut back).unwrap();
        assert_eq!(back, raw);
        Some(comp)
    }

    #[test]
    fn skewed_bytes_compress_and_roundtrip() {
        let raw: Vec<u8> = (0..4096u32).map(|i| (i % 7).pow(2) as u8).collect();
        let comp = roundtrip(&raw).expect("skewed data must compress");
        assert!(comp.len() < raw.len() / 2);
    }

    #[test]
    fn single_symbol_stream_roundtrips() {
        let raw = vec![200u8; 3000];
        roundtrip(&raw).expect("one-symbol data compresses to ~n/8");
    }

    #[test]
    fn uniform_bytes_refuse_to_encode() {
        let raw: Vec<u8> = (0..2048u32)
            .map(|i| (i.wrapping_mul(2654435761)) as u8)
            .collect();
        let mut comp = Vec::new();
        assert!(
            !encode(Tier::detect(), &raw, &mut comp),
            "8-bit-entropy data cannot win"
        );
        assert!(comp.is_empty(), "a refused encode must append nothing");
    }

    #[test]
    fn lengths_never_exceed_limit() {
        // An exponential histogram drives unlimited Huffman depths far
        // past 12; the repair must cap every length and keep Kraft ≤ 1.
        let mut freq = [0u32; 256];
        let mut f = 1u32;
        for slot in freq.iter_mut().take(30) {
            *slot = f;
            f = f.saturating_mul(2);
        }
        let mut lens = [0u8; 256];
        build_lengths(&freq, &mut lens);
        let mut kraft = 0u64;
        for &l in &lens {
            assert!(l <= LIMIT);
            if l > 0 {
                kraft += 1 << (LIMIT - l);
            }
        }
        assert!(kraft <= 1 << LIMIT, "repaired lengths must satisfy Kraft");
        // And a stream drawn from that distribution still round trips.
        let mut raw = Vec::new();
        for s in 0..30u8 {
            raw.extend(std::iter::repeat_n(s, (s as usize + 1) * 3));
        }
        roundtrip(&raw);
    }

    #[test]
    fn empty_bitstream_rules() {
        let table = vec![0u8; HUFFMAN_TABLE_BYTES];
        let mut none: [u8; 0] = [];
        decode(&table, &mut none).unwrap();
        let mut one = [0u8; 1];
        assert_eq!(
            decode(&table, &mut one),
            Err(EntropyError("huffman table empty"))
        );
    }

    #[test]
    fn nonzero_padding_rejected() {
        let raw: Vec<u8> = (0..600u32).map(|i| (i % 5) as u8).collect();
        let mut comp = Vec::new();
        assert!(encode(Tier::detect(), &raw, &mut comp));
        let last = comp.len() - 1;
        comp[last] |= 1; // encode pads the final byte with zero bits
        let mut back = vec![0u8; raw.len()];
        assert!(decode(&comp, &mut back).is_err());
    }

    #[test]
    fn multi_symbol_entries_cover_short_codes() {
        // Two symbols at depth 1: every 12-bit prefix decodes two
        // symbols per hit.
        let mut lens = [0u8; 256];
        lens[0] = 1;
        lens[1] = 1;
        let tab = DecodeTable::build(&lens, true).unwrap();
        for p in 0..TABLE_SIZE {
            let e = tab.entry(p);
            assert_ne!(e & (1 << 25), 0, "prefix {p:#x} should be 2-symbol");
            assert_eq!((e >> 20) & 0x1F, 2, "two depth-1 codes consume 2 bits");
        }
    }
}
