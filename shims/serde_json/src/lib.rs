//! Offline shim for `serde_json`, built on the `serde` shim's [`Value`]
//! tree: [`to_string`] / [`to_string_pretty`] render any `Serialize` type,
//! [`from_str`] parses arbitrary JSON text into a [`Value`].

use serde::Serialize;
pub use serde::Value;

/// JSON error (parse position + message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Byte offset the error was detected at.
    pub offset: usize,
    msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

/// Render `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Render `value` as pretty JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Render `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(value.to_value().to_json().into_bytes())
}

/// Parse JSON text into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Parse JSON bytes into a [`Value`].
pub fn from_slice(bytes: &[u8]) -> Result<Value, Error> {
    from_str(std::str::from_utf8(bytes).map_err(|e| Error {
        offset: e.valid_up_to(),
        msg: "invalid UTF-8".to_string(),
    })?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            offset: self.pos,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("short \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are replaced, not combined —
                            // fine for the artifact JSON this shim reads.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Copy the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    if width == 0 || start + width > self.bytes.len() {
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                    self.pos = start + width;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            // Match upstream serde_json: non-negative integers are u64.
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_text() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("cuSZp ⚡".into())),
            ("ratio".into(), Value::Float(3.5)),
            ("blocks".into(), Value::UInt(42)),
            (
                "steps".into(),
                Value::Array(vec![Value::Int(-1), Value::Null, Value::Bool(true)]),
            ),
        ]);
        for text in [v.to_json(), v.to_json_pretty()] {
            let back = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn serializes_typed_payloads() {
        let s = to_string_pretty(&vec![1u32, 2, 3]).unwrap();
        assert_eq!(
            from_str(&s).unwrap(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2), Value::UInt(3)])
        );
    }

    #[test]
    fn errors_are_errors_not_panics() {
        assert!(from_str("").is_err());
        assert!(from_str("{\"a\":}").is_err());
        assert!(from_str("[1,2,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("1 2").is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = from_str(r#""a\"bA\n""#).unwrap();
        assert_eq!(v, Value::String("a\"bA\n".into()));
    }
}
