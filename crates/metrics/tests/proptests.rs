//! Property tests for the metrics crate: mathematical invariants of the
//! quality measures.

use metrics::cdf::BlockRangeCdf;
use metrics::image::banding_score;
use metrics::rate::{CompressionStats, RatioSummary};
use metrics::ssim::ssim;
use metrics::ErrorStats;
use proptest::prelude::*;

fn data_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1.0e4f32..1.0e4, 8..500)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PSNR is infinite iff the reconstruction is exact; otherwise finite
    /// and decreasing in error scale.
    #[test]
    fn psnr_ordering(data in data_strategy(), noise in 0.001f32..10.0) {
        prop_assume!(data.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
            > data.iter().cloned().fold(f32::INFINITY, f32::min));
        let exact = ErrorStats::compute(&data, &data);
        prop_assert!(exact.psnr.is_infinite());
        let small: Vec<f32> = data.iter().map(|&v| v + noise).collect();
        let big: Vec<f32> = data.iter().map(|&v| v + 4.0 * noise).collect();
        let s_small = ErrorStats::compute(&data, &small);
        let s_big = ErrorStats::compute(&data, &big);
        // `>=` rather than `>`: f32 rounding can absorb the noise entirely
        // on large-magnitude values, making both errors zero.
        prop_assert!(s_small.psnr + 1e-9 >= s_big.psnr);
        prop_assert!(s_small.max_abs_error <= 4.0 * noise as f64 * (1.0 + 1e-3) + 1e-6);
    }

    /// max_rel_error is max_abs_error normalized by the range.
    #[test]
    fn rel_error_is_normalized_abs(data in data_strategy(), noise in 0.01f32..5.0) {
        let recon: Vec<f32> = data.iter().map(|&v| v - noise).collect();
        let s = ErrorStats::compute(&data, &recon);
        if s.value_range > 0.0 {
            prop_assert!((s.max_rel_error - s.max_abs_error / s.value_range).abs() < 1e-12);
        }
    }

    /// SSIM is 1 on identity and within [-1, 1] always.
    #[test]
    fn ssim_bounds(data in data_strategy()) {
        let n = data.len();
        prop_assert!((ssim(&data, &data, &[n]) - 1.0).abs() < 1e-9);
        let shifted: Vec<f32> = data.iter().rev().cloned().collect();
        let s = ssim(&data, &shifted, &[n]);
        prop_assert!((-1.0..=1.0 + 1e-9).contains(&s));
    }

    /// The block-range CDF is a valid CDF: monotone, ends at 1.
    #[test]
    fn cdf_is_valid(data in data_strategy(), block in 2usize..64) {
        let cdf = BlockRangeCdf::compute(&data, block);
        let series = cdf.series(25);
        for w in series.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
        prop_assert!((series.last().unwrap().1 - 1.0).abs() < 1e-12);
        prop_assert!(cdf.sorted_ranges.iter().all(|&r| (0.0..=1.0).contains(&r)));
    }

    /// ratio × bit_rate == 32 for f32 data, for any sizes.
    #[test]
    fn ratio_bitrate_duality(elements in 1usize..1_000_000, compressed in 1u64..4_000_000) {
        let s = CompressionStats::for_f32(elements, compressed);
        prop_assert!((s.ratio() * s.bit_rate() - 32.0).abs() < 1e-6);
    }

    /// Summary bounds its inputs.
    #[test]
    fn summary_bounds(ratios in proptest::collection::vec(0.1f64..200.0, 1..40)) {
        let s = RatioSummary::of(&ratios);
        prop_assert!(s.min <= s.avg && s.avg <= s.max);
        prop_assert!(ratios.iter().all(|&r| s.min <= r && r <= s.max));
    }

    /// Banding is scale-invariant in the error and bounded by 1.
    #[test]
    fn banding_bounds(data in data_strategy(), segment in 2usize..64) {
        let recon: Vec<f32> = data.iter().enumerate()
            .map(|(i, &v)| v + if i % 3 == 0 { 0.5 } else { -0.25 })
            .collect();
        let b = banding_score(&data, &recon, segment);
        prop_assert!((0.0..=1.0).contains(&b));
    }
}
