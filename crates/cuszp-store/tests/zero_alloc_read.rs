//! The zero-allocation partial-read contract, proven executable: with
//! the counting allocator installed as this binary's global allocator, a
//! warm [`StoreScratch`] serves region reads — any codec, any shape —
//! with **zero** heap operations.

use cuszp_store::{write_shard, CodecRegistry, Shard, StoreScratch};

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

fn heap_ops_of(f: impl FnOnce()) -> u64 {
    let before = alloc_counter::snapshot();
    f();
    alloc_counter::snapshot().since(&before).heap_ops()
}

#[test]
fn warm_partial_reads_allocate_nothing() {
    let data: Vec<f32> = (0..100_000)
        .map(|i| (i as f32 * 0.0021).sin() * 30.0 + (i as f32 * 0.00013).cos())
        .collect();
    assert!(
        alloc_counter::is_installed(),
        "counting allocator must be this binary's #[global_allocator]"
    );
    let registry = CodecRegistry::with_defaults();

    for codec in registry.codecs() {
        let bytes = write_shard(&data, &[100_000], &[8192], codec, 1e-3).unwrap();
        let shard = Shard::open(&bytes).unwrap();
        let mut scratch = StoreScratch::new();
        let mut out = vec![0f32; data.len()];

        // Warm-up: the largest read grows the tile and the codec arena
        // to their high-water marks.
        shard.read_all(&registry, &mut scratch, &mut out).unwrap();

        // Steady state: single-block, mid-shard, chunk-straddling, and
        // full reads — zero heap operations of any kind.
        let l = codec.block_len();
        let mut small = vec![0f32; l];
        let mut straddle = vec![0f32; 4096];
        let ops = heap_ops_of(|| {
            shard
                .read_region(&registry, &[16384], &[l], &mut scratch, &mut small)
                .unwrap();
            shard
                .read_region(
                    &registry,
                    &[8192 - 2048],
                    &[4096],
                    &mut scratch,
                    &mut straddle,
                )
                .unwrap();
            shard.read_all(&registry, &mut scratch, &mut out).unwrap();
        });
        assert_eq!(
            ops,
            0,
            "warm reads must not touch the heap (codec {})",
            codec.name()
        );
        assert_eq!(&small[..], &out[16384..16384 + l], "codec {}", codec.name());
        assert_eq!(
            &straddle[..],
            &out[8192 - 2048..8192 + 2048],
            "codec {}",
            codec.name()
        );
    }
}

/// The mmap-backed path has the same contract: once warm, region reads
/// off a [`Shard::open_path`] shard perform zero heap operations — page
/// faults are the kernel's business, not the allocator's.
#[test]
fn warm_mmap_reads_allocate_nothing() {
    let data: Vec<f32> = (0..60_000)
        .map(|i| (i as f32 * 0.0017).sin() * 21.0)
        .collect();
    let registry = CodecRegistry::with_defaults();

    for codec in registry.codecs() {
        let bytes = write_shard(&data, &[60_000], &[4096], codec, 1e-3).unwrap();
        let path = std::env::temp_dir().join(format!(
            "cuszp_zero_alloc_mmap_{}_{}.shard",
            std::process::id(),
            codec.name()
        ));
        std::fs::write(&path, &bytes).unwrap();
        let shard = Shard::open_path(&path).unwrap();
        let mut scratch = StoreScratch::new();
        let mut out = vec![0f32; data.len()];
        shard.read_all(&registry, &mut scratch, &mut out).unwrap();

        let l = codec.block_len();
        let mut small = vec![0f32; l];
        let ops = heap_ops_of(|| {
            shard
                .read_region(&registry, &[4096 + 128], &[l], &mut scratch, &mut small)
                .unwrap();
            shard.read_all(&registry, &mut scratch, &mut out).unwrap();
        });
        assert_eq!(
            ops,
            0,
            "warm mmap reads must not touch the heap (codec {})",
            codec.name()
        );
        assert_eq!(
            &small[..],
            &out[4096 + 128..4096 + 128 + l],
            "codec {}",
            codec.name()
        );
        drop(shard);
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn warm_2d_region_reads_allocate_nothing() {
    let (h, w) = (256, 512);
    let data: Vec<f32> = (0..h * w)
        .map(|i| {
            let (y, x) = (i / w, i % w);
            ((x as f32) * 0.07).sin() * ((y as f32) * 0.05).cos() * 12.0
        })
        .collect();
    let registry = CodecRegistry::with_defaults();
    let codec = registry.get(*b"CZP1").unwrap();
    let bytes = write_shard(&data, &[h, w], &[64, 64], codec, 1e-4).unwrap();
    let shard = Shard::open(&bytes).unwrap();
    let mut scratch = StoreScratch::new();
    let mut full = vec![0f32; h * w];
    shard.read_all(&registry, &mut scratch, &mut full).unwrap();

    let mut region = vec![0f32; 100 * 100];
    let ops = heap_ops_of(|| {
        // Straddles a 2×2 chunk neighborhood.
        shard
            .read_region(&registry, &[30, 30], &[100, 100], &mut scratch, &mut region)
            .unwrap();
    });
    assert_eq!(ops, 0, "warm 2-D region read must not touch the heap");
    for y in 0..100 {
        assert_eq!(
            &region[y * 100..(y + 1) * 100],
            &full[(30 + y) * w + 30..(30 + y) * w + 130],
            "row {y}"
        );
    }
}
