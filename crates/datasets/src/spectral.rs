//! Gaussian-random-field synthesis by superposition of random Fourier modes.
//!
//! Scientific simulation fields are "routinely very smooth in space"
//! (paper §4.2, Fig 6/7): their energy is concentrated at low wavenumbers.
//! A field synthesized as `Σ_m A(k_m) cos(2π k_m·x + φ_m)` with amplitudes
//! following a power law `A(k) ∝ k^{-β/2}` has exactly that character, with
//! the spectral slope `β` controlling smoothness (larger ⇒ smoother). This
//! is the workhorse for the Hurricane / NYX / CESM / QMCPack generators;
//! no FFT dependency is needed because mode counts stay small.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derive a deterministic 64-bit seed from dataset/field labels (FNV-1a).
pub fn seed_from(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= 0x2f;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Configuration for one synthesized Gaussian random field.
#[derive(Debug, Clone)]
pub struct GrfSpec {
    /// Number of random Fourier modes; more modes ⇒ richer texture.
    pub modes: usize,
    /// Spectral slope β: amplitude ∝ k^(−β/2). 2–4 ⇒ turbulent-smooth,
    /// ≥ 5 ⇒ very smooth.
    pub slope: f64,
    /// Maximum wavenumber (cycles across the domain).
    pub k_max: f64,
    /// Additive white-noise standard deviation relative to the field's
    /// unit variance (models sensor/subgrid roughness).
    pub noise: f64,
    /// Per-axis wavenumber multipliers. Physical grids are anisotropic:
    /// e.g. Hurricane's 100 vertical levels span the whole troposphere, so
    /// per-sample variation across axis 0 is several times faster than
    /// along the horizontal fast axis. This is invisible to 1-D block
    /// compressors (cuSZp, cuSZx) but directly inflates a multi-D Lorenzo
    /// predictor's residuals (cuSZ).
    pub anisotropy: [f64; 4],
}

impl Default for GrfSpec {
    fn default() -> Self {
        GrfSpec {
            modes: 64,
            slope: 3.0,
            k_max: 16.0,
            noise: 0.0,
            anisotropy: [1.0; 4],
        }
    }
}

struct Mode {
    k: [f64; 4],
    amp: f64,
    phase: f64,
}

/// Synthesize a GRF over a row-major grid of `shape` (1–4 axes), normalized
/// to zero mean and unit variance before `spec.noise` is added.
pub fn gaussian_random_field(shape: &[usize], spec: &GrfSpec, seed: u64) -> Vec<f32> {
    assert!((1..=4).contains(&shape.len()));
    let mut rng = SmallRng::seed_from_u64(seed);
    let ndim = shape.len();
    let n: usize = shape.iter().product();

    // Sample modes: isotropic direction, power-law magnitude.
    let modes: Vec<Mode> = (0..spec.modes.max(1))
        .map(|_| {
            // Power-law |k| in [1, k_max]: inverse-CDF sampling of k^-slope.
            let u: f64 = rng.gen_range(0.0..1.0);
            let kmag = if (spec.slope - 1.0).abs() < 1e-9 {
                spec.k_max.powf(u)
            } else {
                let a = 1.0 - spec.slope;
                ((1.0 - u) + u * spec.k_max.powf(a)).powf(1.0 / a)
            };
            // Random unit direction in ndim dims.
            let mut dir = [0.0f64; 4];
            let mut norm = 0.0;
            for d in dir.iter_mut().take(ndim) {
                *d = rng.gen_range(-1.0..1.0f64);
                norm += *d * *d;
            }
            let norm = norm.sqrt().max(1e-9);
            for (axis, d) in dir.iter_mut().take(ndim).enumerate() {
                *d = *d / norm * kmag * spec.anisotropy[axis];
            }
            Mode {
                k: dir,
                amp: kmag.powf(-spec.slope / 2.0),
                phase: rng.gen_range(0.0..std::f64::consts::TAU),
            }
        })
        .collect();

    // Evaluate. Row-major index decomposition, coordinates in [0, 1).
    let mut out = vec![0.0f32; n];
    let mut coords = [0usize; 4];
    let inv: Vec<f64> = shape.iter().map(|&s| 1.0 / s as f64).collect();
    for (idx, slot) in out.iter_mut().enumerate() {
        // Decompose idx into per-axis coordinates.
        let mut rem = idx;
        for d in (0..ndim).rev() {
            coords[d] = rem % shape[d];
            rem /= shape[d];
        }
        let mut acc = 0.0f64;
        for m in &modes {
            let mut dot = m.phase;
            for d in 0..ndim {
                dot += std::f64::consts::TAU * m.k[d] * (coords[d] as f64 * inv[d]);
            }
            acc += m.amp * dot.cos();
        }
        *slot = acc as f32;
    }

    // Normalize to zero mean / unit variance.
    let mean = out.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let var = out
        .iter()
        .map(|&v| (v as f64 - mean) * (v as f64 - mean))
        .sum::<f64>()
        / n as f64;
    let inv_sd = 1.0 / var.sqrt().max(1e-12);
    for v in out.iter_mut() {
        *v = ((*v as f64 - mean) * inv_sd) as f32;
    }

    if spec.noise > 0.0 {
        for v in out.iter_mut() {
            // Cheap Gaussian-ish noise (sum of uniforms, CLT).
            let g: f64 = (0..4).map(|_| rng.gen_range(-0.5..0.5f64)).sum::<f64>();
            *v += (g * spec.noise) as f32;
        }
    }
    out
}

/// Affine-map values into `[lo, hi]`.
pub fn rescale(data: &mut [f32], lo: f32, hi: f32) {
    let (mut cur_lo, mut cur_hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in data.iter() {
        cur_lo = cur_lo.min(v);
        cur_hi = cur_hi.max(v);
    }
    let span = (cur_hi - cur_lo).max(1e-12);
    let scale = (hi - lo) / span;
    for v in data.iter_mut() {
        *v = lo + (*v - cur_lo) * scale;
    }
}

/// Rescale into `[lo, hi]` while keeping 0 fixed (negatives scale by
/// `|lo|/|cur_lo|`, positives by `hi/cur_hi`).
///
/// Fields whose physical ambient is zero (winds, velocities, wavefields)
/// must keep their bulk at zero after range adjustment — an affine
/// [`rescale`] would shift it, destroying the near-zero concentration that
/// REL-bounded compression exploits.
pub fn rescale_signed(data: &mut [f32], lo: f32, hi: f32) {
    assert!(lo < 0.0 && hi > 0.0, "rescale_signed needs lo < 0 < hi");
    let mut cur_lo = 0.0f32;
    let mut cur_hi = 0.0f32;
    for &v in data.iter() {
        cur_lo = cur_lo.min(v);
        cur_hi = cur_hi.max(v);
    }
    let neg_scale = if cur_lo < 0.0 { lo / cur_lo } else { 1.0 };
    let pos_scale = if cur_hi > 0.0 { hi / cur_hi } else { 1.0 };
    for v in data.iter_mut() {
        *v *= if *v < 0.0 { neg_scale } else { pos_scale };
    }
}

/// Map a unit-variance GRF through `exp(sigma·x)`, giving the heavy-tailed
/// log-normal character of density fields (NYX baryon/dark-matter density).
pub fn lognormalize(data: &mut [f32], sigma: f32) {
    for v in data.iter_mut() {
        *v = (sigma * *v).exp();
    }
}

/// Soft-threshold to make a field sparse: values below `threshold` become
/// exactly 0 (what creates cuSZp zero blocks and cuSZx constant blocks).
pub fn sparsify(data: &mut [f32], threshold: f32) {
    for v in data.iter_mut() {
        if v.abs() < threshold {
            *v = 0.0;
        }
    }
}

/// Maximum wavenumber that keeps the shortest wavelength at
/// `cells_per_wavelength` grid cells on the longest axis.
///
/// Real SDRBench fields are sampled finely relative to their physical
/// structures — that per-sample smoothness (Fig 6/7) is resolution-driven,
/// so synthetic stand-ins must fix wavelengths in *cells*, not in domain
/// fractions, to stay faithful across generation scales.
pub fn k_for(shape: &[usize], cells_per_wavelength: f64) -> f64 {
    let longest = *shape.iter().max().expect("non-empty shape") as f64;
    (longest / cells_per_wavelength).max(0.75)
}

/// Concentrate a unit-variance field's mass near zero while stretching its
/// tails: `y = x·|x|^(p−1)` (signed power, p > 1).
///
/// Physical fields routinely have value ranges dominated by localized
/// extremes (storm cores, halo centers) while most of the volume sits near
/// the ambient value — the property that makes REL-bounded compression of
/// e.g. Hurricane winds so effective (Table 3). A plain Gaussian field has
/// no such tails; this transform adds them.
pub fn concentrate(data: &mut [f32], p: f32) {
    for v in data.iter_mut() {
        *v = v.signum() * v.abs().powf(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_is_deterministic_and_label_sensitive() {
        assert_eq!(seed_from(&["a", "b"]), seed_from(&["a", "b"]));
        assert_ne!(seed_from(&["a", "b"]), seed_from(&["ab"]));
        assert_ne!(seed_from(&["a"]), seed_from(&["b"]));
    }

    #[test]
    fn grf_is_deterministic() {
        let spec = GrfSpec::default();
        let a = gaussian_random_field(&[16, 16], &spec, 42);
        let b = gaussian_random_field(&[16, 16], &spec, 42);
        assert_eq!(a, b);
        let c = gaussian_random_field(&[16, 16], &spec, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn grf_is_normalized() {
        let spec = GrfSpec {
            modes: 48,
            ..Default::default()
        };
        let data = gaussian_random_field(&[32, 32, 8], &spec, 7);
        let n = data.len() as f64;
        let mean = data.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = data.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 1e-3, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-2, "var {var}");
    }

    #[test]
    fn higher_slope_is_smoother() {
        let rough = gaussian_random_field(
            &[4096],
            &GrfSpec {
                slope: 1.2,
                k_max: 64.0,
                ..Default::default()
            },
            1,
        );
        let smooth = gaussian_random_field(
            &[4096],
            &GrfSpec {
                slope: 5.0,
                k_max: 64.0,
                ..Default::default()
            },
            1,
        );
        let tv = |d: &[f32]| -> f64 {
            d.windows(2)
                .map(|w| (w[1] - w[0]).abs() as f64)
                .sum::<f64>()
        };
        assert!(
            tv(&smooth) < tv(&rough),
            "smooth TV {} !< rough TV {}",
            tv(&smooth),
            tv(&rough)
        );
    }

    #[test]
    fn rescale_hits_bounds() {
        let mut d = vec![0.0, 0.5, 1.0];
        rescale(&mut d, -2.0, 6.0);
        assert!((d[0] + 2.0).abs() < 1e-6);
        assert!((d[2] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn sparsify_zeroes_small_values() {
        let mut d = vec![0.1, -0.05, 2.0, -3.0];
        sparsify(&mut d, 0.2);
        assert_eq!(d, vec![0.0, 0.0, 2.0, -3.0]);
    }

    #[test]
    fn lognormalize_is_positive() {
        let mut d = vec![-3.0, 0.0, 3.0];
        lognormalize(&mut d, 1.5);
        assert!(d.iter().all(|&v| v > 0.0));
        assert!(d[2] > d[1] && d[1] > d[0]);
    }
}
