//! Hybrid lossy–lossless second stage: per-mode, per-tier ratio and
//! throughput of the `CUSZPHY1` entropy subsystem (ISSUE 9, extended by
//! ISSUE 10).
//!
//! cuSZp's fixed-length blocks leave entropy on the table when the
//! bit-shuffled planes are sparse or repetitive. The hybrid stage
//! re-encodes the plain `CUSZP1` stream chunk-by-chunk, picking per
//! chunk among passthrough, an SZx-style constant flush, zero-run RLE,
//! and canonical Huffman (one-way or four-stream interleaved) via a
//! cheap sampled estimator. This experiment measures, per dataset and
//! per SIMD tier the host supports, the compression ratio and
//! single-core second-stage throughput of each mode **forced** across
//! the whole frame, next to the adaptive estimator's pick — plus a
//! uniform-noise control where no mode can win and the estimator must
//! get out of the way. The `fixed` rows time the first-stage codec
//! itself (warm-arena `compress_into`/`decompress_into_at`, the same
//! methodology as the hybrid rows), so the hybrid overhead factor is
//! readable straight from the artifact.
//!
//! Written as `BENCH_hybrid.json` at the repository root. Hard
//! assertions (the ISSUE 9 acceptance criteria, now pinned per tier):
//!
//! * every hybrid frame decodes **byte-identical** to the plain frame it
//!   staged from (adaptive and all forced modes, at every tier);
//! * hybrid frames are byte-identical across tiers (the ladder selects
//!   kernels, never output);
//! * the shipped hybrid ratio (with the product's whole-frame fallback)
//!   is ≥ the fixed-length ratio on every dataset;
//! * when the estimator selects passthrough for the majority of chunks,
//!   its encode throughput stays within a constant factor (0.75×) of
//!   forced passthrough — a broken-estimator guard, not a noise-level
//!   bound (see `measure_dataset`).

use super::Ctx;
use crate::report::{f2, Report};
use cuszp_core::hybrid::{self, HybridRef, HybridScratch, Mode};
use cuszp_core::{fast, simd, CuszpConfig, Scratch, SimdLevel};
use datasets::{generate_subset, DatasetId, Scale};
use serde::Serialize;
use std::time::Instant;

/// One dataset × mode × tier measurement of the second stage.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Dataset (or `noise` for the synthetic control).
    pub dataset: String,
    /// `fixed` (first-stage codec, no second stage), `adaptive`, or a
    /// forced mode name.
    pub mode: String,
    /// SIMD dispatch tier the measurement ran at (`scalar`/`avx2`/
    /// `avx512`; only tiers the host supports appear).
    pub tier: String,
    /// End-to-end compression ratio: raw bytes / stored bytes. Forced
    /// modes report their true frame size; `adaptive` reports the
    /// shipped size (the product keeps the plain frame when the stage
    /// does not win).
    pub ratio: f64,
    /// Stored bytes behind `ratio`.
    pub stored_bytes: usize,
    /// Encode throughput, GB/s of raw input (single core, warm arena).
    /// For `fixed` this is the first-stage codec; for every other mode
    /// it covers only the second stage (the plain frame is already
    /// staged, matching how the store codec and service run it).
    pub enc_gbps: f64,
    /// Decode throughput, GB/s of raw input (single core, warm arena).
    pub dec_gbps: f64,
}

/// Per-dataset adaptive-estimator summary.
#[derive(Debug, Clone, Serialize)]
pub struct AdaptiveSummary {
    /// Dataset name.
    pub dataset: String,
    /// Chunks per mode in the adaptive frame: `[pass, constant, rle,
    /// huffman, huffman4]`.
    pub mode_histogram: [usize; 5],
    /// Whether the shipped payload was the hybrid frame (vs the plain
    /// fallback).
    pub hybrid_won: bool,
}

/// The checked-in benchmark artifact.
#[derive(Debug, Clone, Serialize)]
pub struct BenchFile {
    /// Artifact schema tag.
    pub experiment: String,
    /// Highest SIMD tier the running host supports — rows stop there.
    pub detected_tier: String,
    /// REL bound resolved per dataset against its own value range.
    pub rel_bound: f64,
    /// Tighter REL bound used for the `noise` control: it keeps ~19
    /// residual bits, so every bit-shuffled plane is dense and the
    /// estimator must select passthrough.
    pub noise_rel_bound: f64,
    /// Timing samples per measurement (best-of).
    pub samples: usize,
    /// All dataset × mode × tier rows.
    pub rows: Vec<Row>,
    /// Per-dataset estimator behavior (tier-invariant: hybrid frames
    /// are byte-identical across the ladder).
    pub adaptive: Vec<AdaptiveSummary>,
}

const MODES: [(Mode, &str); 5] = [
    (Mode::Pass, "pass"),
    (Mode::Constant, "constant"),
    (Mode::Rle, "rle"),
    (Mode::Huffman, "huffman"),
    (Mode::Huffman4, "huffman4"),
];

struct BestOf {
    best: f64,
}

impl BestOf {
    fn new() -> Self {
        BestOf {
            best: f64::INFINITY,
        }
    }
    fn sample(&mut self, reps: usize, mut f: impl FnMut()) {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        self.best = self.best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
}

/// Deterministic uniform noise: every bit-plane is dense, so no entropy
/// mode can beat passthrough and the estimator's job is to stay out of
/// the way.
fn noise(n: usize) -> Vec<f32> {
    let mut s = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2_000_001) as f32 - 1_000_000.0) * 0.01
        })
        .collect()
}

/// Measure one dataset's second-stage rows across every supported tier.
/// Returns the (tier-invariant) adaptive summary.
#[allow(clippy::too_many_lines)]
fn measure_dataset(
    name: &str,
    data: &[f32],
    rel: f64,
    samples: usize,
    detected: SimdLevel,
    rows: &mut Vec<Row>,
) -> AdaptiveSummary {
    let base = CuszpConfig::default();
    let raw = data.len() * 4;
    let eb = rel * cuszp_core::value_range(data);
    let reps = ((64 << 20) / raw.max(1)).clamp(1, 64);
    let mut scratch = Scratch::new();
    let mut hs = HybridScratch::new();
    let mut plain = Vec::new();
    let mut frame = Vec::new();
    let mut back = Vec::new();
    let mut field = vec![0.0f32; data.len()];
    fast::compress_into(&mut scratch, data, eb, base, &mut plain);

    let mut hist = [0usize; 5];
    let mut hybrid_won = false;
    let mut scalar_frame: Option<Vec<u8>> = None;
    for level in SimdLevel::ALL.into_iter().filter(|&l| l <= detected) {
        let cfg = CuszpConfig {
            simd: Some(level),
            ..base
        };

        // First-stage baseline, same warm-arena methodology as the
        // hybrid rows below so the overhead factor reads off directly.
        let mut fixed_enc = BestOf::new();
        let mut fixed_dec = BestOf::new();
        for _ in 0..samples {
            fixed_enc.sample(reps, || {
                fast::compress_into(&mut scratch, data, eb, cfg, &mut plain);
                std::hint::black_box(plain.len());
            });
            fixed_dec.sample(reps, || {
                let r = cuszp_core::CompressedRef::parse(&plain).expect("own frame parses");
                fast::decompress_into_at(r, &mut scratch, Some(level), &mut field);
                std::hint::black_box(field.len());
            });
        }
        rows.push(Row {
            dataset: name.to_string(),
            mode: "fixed".to_string(),
            tier: level.name().to_string(),
            ratio: raw as f64 / plain.len() as f64,
            stored_bytes: plain.len(),
            enc_gbps: raw as f64 / fixed_enc.best / 1e9,
            dec_gbps: raw as f64 / fixed_dec.best / 1e9,
        });

        // Encode + verify + time one (forced or adaptive) second-stage
        // configuration at this tier.
        let mut run = |force: Option<Mode>| -> (Vec<u8>, f64, f64, [usize; 5]) {
            let r = cuszp_core::CompressedRef::parse(&plain).expect("own frame parses");
            let chunk_blocks = hybrid::auto_chunk_blocks(&r);
            hybrid::encode_with_at(&r, chunk_blocks, force, level, &mut hs, &mut frame);
            let h = HybridRef::parse(&frame).expect("own hybrid frame parses");
            let hist = h.mode_histogram();
            hybrid::decode_stream_bytes(&h, &mut hs, &mut back).expect("own frame decodes");
            assert_eq!(
                back, plain,
                "{name}/{force:?}/{level}: hybrid frame must decode byte-identical to the plain frame"
            );

            let mut enc = BestOf::new();
            let mut dec = BestOf::new();
            for _ in 0..samples {
                enc.sample(reps, || {
                    hybrid::encode_with_at(&r, chunk_blocks, force, level, &mut hs, &mut frame);
                    std::hint::black_box(frame.len());
                });
                dec.sample(reps, || {
                    let h = HybridRef::parse(&frame).expect("parse");
                    hybrid::decode_stream_bytes(&h, &mut hs, &mut back).expect("decode");
                    std::hint::black_box(back.len());
                });
            }
            (
                frame.clone(),
                raw as f64 / enc.best / 1e9,
                raw as f64 / dec.best / 1e9,
                hist,
            )
        };

        let (adaptive_frame, adaptive_enc, adaptive_dec, tier_hist) = run(None);
        // The ladder selects kernels, never output: every tier's
        // adaptive frame must match the first tier's byte-for-byte.
        match &scalar_frame {
            None => scalar_frame = Some(adaptive_frame.clone()),
            Some(s) => assert_eq!(
                s, &adaptive_frame,
                "{name}/{level}: adaptive frame must be byte-identical across tiers"
            ),
        }
        hist = tier_hist;
        let adaptive_len = adaptive_frame.len();
        hybrid_won = adaptive_len < plain.len();
        let shipped = adaptive_len.min(plain.len());
        rows.push(Row {
            dataset: name.to_string(),
            mode: "adaptive".to_string(),
            tier: level.name().to_string(),
            ratio: raw as f64 / shipped as f64,
            stored_bytes: shipped,
            enc_gbps: adaptive_enc,
            dec_gbps: adaptive_dec,
        });

        let mut pass_enc = 0.0f64;
        for (mode, label) in MODES {
            let (forced_frame, enc_gbps, dec_gbps, _) = run(Some(mode));
            let len = forced_frame.len();
            if mode == Mode::Pass {
                pass_enc = enc_gbps;
            }
            rows.push(Row {
                dataset: name.to_string(),
                mode: label.to_string(),
                tier: level.name().to_string(),
                ratio: raw as f64 / len as f64,
                stored_bytes: len,
                enc_gbps,
                dec_gbps,
            });
        }

        // ISSUE 9 acceptance: an estimator that picks passthrough must
        // stay within a constant factor of passthrough's own throughput.
        // The guard exists to catch a broken estimator (one that codes
        // incompressible chunks, or re-scans them many times) — an
        // order-of-magnitude failure — not percent-level costs: both
        // sides are best-of-N timings of multi-GB/s memcpy loops on a
        // shared-core host, where scheduler noise alone has been
        // observed to move the two loops >10% apart run to run.
        let total_chunks: usize = hist.iter().sum();
        if hist[Mode::Pass.to_byte() as usize] * 2 > total_chunks {
            assert!(
                adaptive_enc >= 0.75 * pass_enc,
                "{name}/{level}: adaptive picked pass on most chunks but lost \
                 {:.1}% throughput (adaptive {adaptive_enc:.2} GB/s vs pass {pass_enc:.2} GB/s)",
                100.0 * (1.0 - adaptive_enc / pass_enc),
            );
        }
    }

    AdaptiveSummary {
        dataset: name.to_string(),
        mode_histogram: hist,
        hybrid_won,
    }
}

/// Run the hybrid-ratio experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "hybrid_ratio",
        "Hybrid second stage: ratio and throughput per entropy mode and SIMD tier",
        &ctx.out_dir,
    );
    let rel = 1e-2;
    let noise_rel = 1e-6;
    let detected = simd::detect_level();
    let (noise_n, samples) = match ctx.scale {
        Scale::Tiny => (1usize << 16, 3usize),
        Scale::Small => (1 << 20, 10),
        Scale::Medium => (1 << 22, 20),
    };
    report.line(&format!(
        "REL bound {rel:.0e} per dataset ({noise_rel:.0e} on the noise control); \
         best of {samples} samples, single core, tiers up to {}",
        detected.name()
    ));

    let mut rows = Vec::new();
    let mut adaptive = Vec::new();
    for id in DatasetId::all() {
        let fields = generate_subset(id, ctx.scale, 1);
        let field = fields.first().expect("dataset has a field");
        adaptive.push(measure_dataset(
            id.name(),
            &field.data,
            rel,
            samples,
            detected,
            &mut rows,
        ));
    }
    adaptive.push(measure_dataset(
        "noise",
        &noise(noise_n),
        noise_rel,
        samples,
        detected,
        &mut rows,
    ));
    // The control exists to pin the estimator's passthrough overhead —
    // at ~19 residual bits no entropy mode can win, so it must pick
    // pass (and the constant-factor throughput check inside measure_dataset ran).
    let noise_hist = adaptive.last().expect("noise measured").mode_histogram;
    assert!(
        noise_hist[0] * 2 > noise_hist.iter().sum::<usize>(),
        "estimator must select passthrough on dense noise, got {noise_hist:?}"
    );

    // Acceptance: the shipped hybrid payload never loses to the plain
    // fixed-length stream (the whole-frame fallback guarantees it; this
    // keeps the artifact honest about it). Ratios are tier-invariant, so
    // the first matching tier's rows cover them all.
    for summary in &adaptive {
        let fixed = rows
            .iter()
            .find(|r| r.dataset == summary.dataset && r.mode == "fixed")
            .expect("fixed row");
        let hy = rows
            .iter()
            .find(|r| r.dataset == summary.dataset && r.mode == "adaptive")
            .expect("adaptive row");
        assert!(
            hy.ratio >= fixed.ratio,
            "{}: hybrid ratio {} must be >= fixed ratio {}",
            summary.dataset,
            hy.ratio,
            fixed.ratio
        );
    }

    report.table(
        &[
            "dataset", "mode", "tier", "ratio", "stored", "enc GB/s", "dec GB/s",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.mode.clone(),
                    r.tier.clone(),
                    f2(r.ratio),
                    format!("{}", r.stored_bytes),
                    f2(r.enc_gbps),
                    f2(r.dec_gbps),
                ]
            })
            .collect::<Vec<_>>(),
    );
    for s in &adaptive {
        report.line(&format!(
            "{}: adaptive chunks [pass {}, constant {}, rle {}, huffman {}, huffman4 {}]{}",
            s.dataset,
            s.mode_histogram[0],
            s.mode_histogram[1],
            s.mode_histogram[2],
            s.mode_histogram[3],
            s.mode_histogram[4],
            if s.hybrid_won {
                ""
            } else {
                " (plain fallback shipped)"
            }
        ));
    }

    let bench = BenchFile {
        experiment: "hybrid_ratio".to_string(),
        detected_tier: detected.name().to_string(),
        rel_bound: rel,
        noise_rel_bound: noise_rel,
        samples,
        rows: rows.clone(),
        adaptive,
    };
    report.save_json(&rows);
    report.save_text();

    let root = ctx.out_dir.parent().unwrap_or(std::path::Path::new("."));
    let path = root.join("BENCH_hybrid.json");
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench file");
    std::fs::write(&path, json).expect("write BENCH_hybrid.json");
    report.line(&format!(
        "benchmark trajectory written to {}",
        path.display()
    ));
}
