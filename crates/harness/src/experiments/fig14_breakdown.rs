//! Fig 14 — end-to-end time breakdown (GPU / CPU / Memcpy) per compressor,
//! on the Hurricane `U` field.
//!
//! The paper's point: cuSZp and cuZFP are 100% GPU (single kernel), while
//! cuSZ spends only 3.24% (compression) / 4.21% (decompression) of its
//! end-to-end time on the GPU — the rest is host compute and PCIe traffic.
//! cuSZx is similar, with a larger CPU share in decompression.

use super::Ctx;
use crate::all_compressors;
use crate::report::{pct, Report};
use cuszp_core::ErrorBound;
use datasets::{hurricane, DatasetId};
use gpu_sim::{DeviceSpec, Gpu};
use serde::Serialize;

/// One breakdown row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Compressor name.
    pub compressor: String,
    /// Direction ("compression" / "decompression").
    pub direction: String,
    /// GPU share.
    pub gpu: f64,
    /// CPU share.
    pub cpu: f64,
    /// Memcpy share.
    pub memcpy: f64,
}

/// Run the Fig 14 experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "fig14",
        "End-to-end breakdown, Hurricane field U",
        &ctx.out_dir,
    );
    let spec = DeviceSpec::a100();
    let field = hurricane::field("U", &ctx.scale.shape(DatasetId::Hurricane));
    let eb = ErrorBound::Rel(1e-2).absolute(field.value_range() as f64);

    let mut out = Vec::new();
    for direction in ["compression", "decompression"] {
        report.line(&format!("\n{direction}"));
        let mut rows = Vec::new();
        for comp in all_compressors(8) {
            let mut gpu = Gpu::new(spec.clone());
            let input = gpu.h2d(&field.data);
            gpu.reset_timeline();
            let stream = comp.compress(&mut gpu, &input, &field.shape, eb);
            if direction == "decompression" {
                gpu.reset_timeline();
                let _ = comp.decompress(&mut gpu, stream.as_ref());
            }
            let b = gpu.breakdown();
            rows.push(vec![
                comp.kind().name().to_string(),
                pct(b.gpu_fraction()),
                pct(b.cpu_fraction()),
                pct(b.memcpy_fraction()),
            ]);
            out.push(Row {
                compressor: comp.kind().name().to_string(),
                direction: direction.to_string(),
                gpu: b.gpu_fraction(),
                cpu: b.cpu_fraction(),
                memcpy: b.memcpy_fraction(),
            });
        }
        report.table(&["compressor", "GPU", "CPU", "Memcpy"], &rows);
    }
    report.line(
        "\npaper: cuSZp and cuZFP are 100% GPU; cuSZ GPU share is 3.24% (comp) / \
4.21% (decomp); cuSZx similar with more CPU in decompression",
    );
    report.save_json(&out);
    report.save_text();
}
