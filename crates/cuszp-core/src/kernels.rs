//! The fused single-kernel device pipeline (paper §3–§4).
//!
//! One kernel performs **all four steps** for compression and one for
//! decompression — cuSZp's defining design decision. Grid geometry mirrors
//! the reference implementation: one warp per thread block, one data block
//! of `L` values per lane, so a tile covers `32·L` elements. The Global
//! Synchronization is the decoupled-lookback [`ScanState`] from `gpu-sim`,
//! run *inside* the same kernel — no second launch, no host round-trip.
//!
//! Traffic recording convention (feeds Figs 13/14/15/21): each step charges
//! the global-memory bytes it actually moves and the serialized per-thread
//! ops on its critical path. Payload writes/reads are charged as *strided*
//! traffic — they land at scan-computed byte offsets, the access pattern
//! the paper's Fig 21 identifies as the dominant cost.

use crate::config::CuszpConfig;
use crate::dtype::{DType, FloatData};
use crate::encode::{cmp_bytes_for, plan_block};
use crate::format::Compressed;
use crate::quantize::{dequantize, quantize};
use gpu_sim::warp::exclusive_scan_u64;
use gpu_sim::{DeviceAtomics, DeviceBuffer, Gpu, LaunchConfig, ScanState, WARP};

/// Step labels (paper Fig 21 vocabulary).
pub const STEP_QP: &str = "QP";
/// Fixed-length Encoding step label.
pub const STEP_FE: &str = "FE";
/// Global Synchronization step label.
pub const STEP_GS: &str = "GS";
/// Block Bit-shuffle step label.
pub const STEP_BB: &str = "BB";

/// Data blocks processed per tile (one per warp lane).
pub const BLOCKS_PER_TILE: usize = WARP;

/// A compressed stream resident in device memory.
pub struct DeviceCompressed {
    /// Fixed length per block (fraction ⓐ).
    pub fixed_lengths: DeviceBuffer<u8>,
    /// Payload bytes (fraction ⓑ); only `payload_len` bytes are valid.
    pub payload: DeviceBuffer<u8>,
    /// Valid payload length (the synchronized total).
    pub payload_len: usize,
    /// Original element count.
    pub num_elements: usize,
    /// Block length `L`.
    pub block_len: usize,
    /// Absolute error bound used.
    pub eb: f64,
    /// Whether Lorenzo prediction was applied.
    pub lorenzo: bool,
    /// Element type of the original data.
    pub dtype: DType,
}

impl DeviceCompressed {
    /// The paper's compressed size: fixed-length array + payload.
    pub fn stream_bytes(&self) -> u64 {
        (self.fixed_lengths.len() + self.payload_len) as u64
    }

    /// Copy the stream to the host (charging the PCIe transfer), yielding
    /// the portable [`Compressed`] form.
    pub fn to_host(&self, gpu: &mut Gpu) -> Compressed {
        let fixed_lengths = gpu.d2h(&self.fixed_lengths);
        let payload = gpu.d2h_prefix(&self.payload, self.payload_len);
        Compressed {
            num_elements: self.num_elements as u64,
            block_len: self.block_len as u32,
            eb: self.eb,
            lorenzo: self.lorenzo,
            dtype: self.dtype,
            fixed_lengths,
            payload,
        }
    }
}

/// Upload a host stream to the device (charging PCIe transfers).
pub fn compressed_h2d(gpu: &mut Gpu, c: &Compressed) -> DeviceCompressed {
    let fixed_lengths = gpu.h2d(&c.fixed_lengths);
    let payload = gpu.h2d(&c.payload);
    DeviceCompressed {
        fixed_lengths,
        payload,
        payload_len: c.payload.len(),
        num_elements: c.num_elements as usize,
        block_len: c.block_len as usize,
        eb: c.eb,
        lorenzo: c.lorenzo,
        dtype: c.dtype,
    }
}

/// **Compression kernel** — all four steps fused into one launch.
///
/// `eb` is the absolute bound (REL bounds are resolved by the caller from
/// the value range, as the reference CLI does before launching).
pub fn compress_kernel<T: FloatData>(
    gpu: &mut Gpu,
    input: &DeviceBuffer<T>,
    eb: f64,
    cfg: CuszpConfig,
) -> DeviceCompressed {
    cfg.validate();
    assert!(
        eb.is_finite() && eb > 0.0,
        "absolute bound must be positive"
    );
    let n = input.len();
    let l = cfg.block_len;
    let num_blocks = n.div_ceil(l);
    let tiles = num_blocks.div_ceil(BLOCKS_PER_TILE).max(1);

    let fixed_lengths = gpu.alloc::<u8>(num_blocks);
    // Worst case per block is dtype-bounded: `(max_F + 1)·L/8` payload
    // bytes — 34·L/8 for f32 rather than the 65·L/8 f64 ceiling, halving
    // device memory pressure for single-precision streams.
    let max_f = T::DTYPE.max_fixed_len() as usize;
    let payload = gpu.alloc::<u8>(num_blocks * (max_f + 1) * l / 8);
    let scan = ScanState::new(tiles);
    let total = DeviceAtomics::zeroed(1);
    let lorenzo = cfg.lorenzo;

    gpu.launch("cuszp_compress", LaunchConfig::grid(tiles), |ctx| {
        let inp = input.slice();
        let fl = fixed_lengths.slice();
        let pay = payload.slice();
        let tile = ctx.block;
        let block0 = tile * BLOCKS_PER_TILE;

        // ① Quantization + Prediction, ② Fixed-length Encoding — per lane.
        let mut residuals = vec![0i64; BLOCKS_PER_TILE * l];
        let mut lane_cmp = [0u64; WARP];
        let mut lane_f = [0u8; WARP];
        let mut elems_loaded = 0usize;
        for lane in 0..WARP {
            let b = block0 + lane;
            if b >= num_blocks {
                continue;
            }
            let start = b * l;
            let end = (start + l).min(n);
            let resid = &mut residuals[lane * l..(lane + 1) * l];
            let mut prev = 0i64;
            for (k, r) in resid.iter_mut().enumerate() {
                let idx = start + k;
                if idx < end {
                    let q = quantize(inp.get(idx), eb);
                    *r = if lorenzo { q.wrapping_sub(prev) } else { q };
                    if lorenzo {
                        prev = q;
                    }
                } else {
                    *r = 0; // tail padding in the residual domain
                }
            }
            elems_loaded += end - start;

            let plan = plan_block(resid, l);
            assert!(
                plan.fixed_len as usize <= max_f,
                "block {b}: fixed length {} exceeds the {:?} cap of {max_f} \
                 bits — the bound is far below the data's representable \
                 precision",
                plan.fixed_len,
                T::DTYPE,
            );
            lane_f[lane] = plan.fixed_len;
            lane_cmp[lane] = plan.cmp_bytes as u64;
            fl.set(b, plan.fixed_len);
        }
        ctx.read(STEP_QP, (elems_loaded * std::mem::size_of::<T>()) as u64);
        // Divide + round + cast + subtract, serialized per element.
        ctx.ops(STEP_QP, (elems_loaded * 8) as u64);
        // abs/max reduction + sign extraction + bit-width count per
        // element, plus the F byte store.
        ctx.ops(STEP_FE, (elems_loaded * 12) as u64);
        ctx.write(STEP_FE, BLOCKS_PER_TILE.min(num_blocks - block0) as u64);

        // ③ Global Synchronization: warp scan + decoupled lookback.
        let (lane_off, tile_total, warp_ops) = exclusive_scan_u64(lane_cmp);
        let prefix = if tile == 0 {
            scan.publish_prefix(0, tile_total);
            0
        } else {
            scan.publish_aggregate(tile, tile_total);
            let (p, look_ops) = scan.lookback(tile);
            scan.publish_prefix(tile, p + tile_total);
            ctx.ops(STEP_GS, look_ops * 4);
            p
        };
        ctx.ops(STEP_GS, warp_ops + 2 * WARP as u64);
        // The dominant GS cost on real hardware is not the arithmetic but
        // the chain of uncached global flag/status round trips (publish
        // aggregate -> poll predecessors -> publish prefix), ~400-cycle
        // latency each, only partially hidden by tile-level concurrency.
        // Charged per tile; calibrated against the paper's Fig 10
        // (~208 GB/s average GS throughput) and Fig 21 (GS ~37% of the
        // compression kernel).
        ctx.ops(STEP_GS, 15_000);
        ctx.write(STEP_GS, 8);
        ctx.read(STEP_GS, 8);
        if tile == tiles - 1 {
            total.store(0, prefix + tile_total);
        }

        // ④ Block Bit-shuffle: write sign map + bit planes at the
        // synchronized offsets.
        let mut bytes_out = 0u64;
        let mut bit_ops = 0u64;
        for lane in 0..WARP {
            let b = block0 + lane;
            if b >= num_blocks || lane_f[lane] == 0 {
                continue;
            }
            let f = lane_f[lane] as usize;
            let resid = &residuals[lane * l..(lane + 1) * l];
            let mut off = prefix as usize + lane_off[lane] as usize;

            // Sign map: L/8 bytes.
            for j in 0..l / 8 {
                let mut byte = 0u8;
                for bit in 0..8 {
                    if resid[8 * j + bit] < 0 {
                        byte |= 1 << bit;
                    }
                }
                pay.set(off, byte);
                off += 1;
            }
            // Bit planes: F × L/8 bytes.
            for k in 0..f {
                for j in 0..l / 8 {
                    let mut byte = 0u8;
                    for bit in 0..8 {
                        let v = resid[8 * j + bit].unsigned_abs();
                        byte |= (((v >> k) & 1) as u8) << bit;
                    }
                    pay.set(off, byte);
                    off += 1;
                }
            }
            bytes_out += lane_cmp[lane];
            bit_ops += (f as u64 + 1) * (l as u64) + 8;
        }
        ctx.write_strided(STEP_BB, bytes_out);
        ctx.ops(STEP_BB, bit_ops * 2);
    });

    let payload_len = total.load(0) as usize;
    DeviceCompressed {
        fixed_lengths,
        payload,
        payload_len,
        num_elements: n,
        block_len: l,
        eb,
        lorenzo,
        dtype: T::DTYPE,
    }
}

/// **Decompression kernel** — the reverse pipeline, also fully fused.
///
/// # Panics
/// Panics if `T` does not match the stream's element type.
#[allow(clippy::needless_range_loop)] // k is the in-block lane index, as in the CUDA kernel
pub fn decompress_kernel<T: FloatData>(gpu: &mut Gpu, c: &DeviceCompressed) -> DeviceBuffer<T> {
    assert_eq!(c.dtype, T::DTYPE, "stream element type mismatch");
    let n = c.num_elements;
    let l = c.block_len;
    let num_blocks = n.div_ceil(l);
    assert_eq!(c.fixed_lengths.len(), num_blocks, "stream/block mismatch");
    let tiles = num_blocks.div_ceil(BLOCKS_PER_TILE).max(1);
    let output = gpu.alloc::<T>(n);
    let scan = ScanState::new(tiles);
    let eb = c.eb;
    let lorenzo = c.lorenzo;

    gpu.launch("cuszp_decompress", LaunchConfig::grid(tiles), |ctx| {
        let fl = c.fixed_lengths.slice();
        let pay = c.payload.slice();
        let out = output.slice();
        let tile = ctx.block;
        let block0 = tile * BLOCKS_PER_TILE;
        let lanes_here = BLOCKS_PER_TILE.min(num_blocks - block0);

        // ③⁻¹ Read the fixed lengths, rebuild block offsets via Eq 2, scan.
        let mut lane_cmp = [0u64; WARP];
        let mut lane_f = [0u8; WARP];
        for lane in 0..lanes_here {
            let f = fl.get(block0 + lane);
            lane_f[lane] = f;
            lane_cmp[lane] = cmp_bytes_for(f, l) as u64;
        }
        ctx.read(STEP_GS, lanes_here as u64);
        let (lane_off, tile_total, warp_ops) = exclusive_scan_u64(lane_cmp);
        let prefix = if tile == 0 {
            scan.publish_prefix(0, tile_total);
            0
        } else {
            scan.publish_aggregate(tile, tile_total);
            let (p, look_ops) = scan.lookback(tile);
            scan.publish_prefix(tile, p + tile_total);
            ctx.ops(STEP_GS, look_ops * 4);
            p
        };
        ctx.ops(STEP_GS, warp_ops + 2 * WARP as u64);
        // Global flag/status latency chain, as in compression.
        ctx.ops(STEP_GS, 12_000);
        ctx.write(STEP_GS, 8);
        ctx.read(STEP_GS, 8);

        // ④⁻¹ unshuffle, ②⁻¹ signs, ①⁻¹ prefix-sum + dequantize — per lane.
        let mut bytes_in = 0u64;
        let mut bit_ops = 0u64;
        let mut elems_stored = 0usize;
        let mut abs_vals = vec![0u64; l];
        for lane in 0..lanes_here {
            let b = block0 + lane;
            let start = b * l;
            let end = (start + l).min(n);
            let f = lane_f[lane] as usize;
            if f == 0 {
                for idx in start..end {
                    out.set(idx, T::from_f64(0.0));
                }
                elems_stored += end - start;
                continue;
            }
            let mut off = prefix as usize + lane_off[lane] as usize;
            let sign_base = off;
            off += l / 8;

            for v in abs_vals.iter_mut() {
                *v = 0;
            }
            for k in 0..f {
                for j in 0..l / 8 {
                    let byte = pay.get(off);
                    off += 1;
                    for bit in 0..8 {
                        abs_vals[8 * j + bit] |= (((byte >> bit) & 1) as u64) << k;
                    }
                }
            }
            let mut acc = 0i64;
            for k in 0..l {
                let neg = pay.get(sign_base + k / 8) & (1 << (k % 8)) != 0;
                let v = abs_vals[k] as i64;
                let resid = if neg { v.wrapping_neg() } else { v };
                let q = if lorenzo {
                    acc = acc.wrapping_add(resid);
                    acc
                } else {
                    resid
                };
                let idx = start + k;
                if idx < end {
                    out.set(idx, dequantize(q, eb));
                }
            }
            bytes_in += lane_cmp[lane];
            bit_ops += (f as u64 + 1) * (l as u64) + 8;
            elems_stored += end - start;
        }
        ctx.read_strided(STEP_BB, bytes_in);
        ctx.ops(STEP_BB, bit_ops * 2);
        // Sign application is folded into the reconstruction loop above.
        ctx.ops(STEP_FE, (elems_stored * 2) as u64);
        // Multiply + add, cheaper than the forward divide+round (this is
        // why decompression outruns compression in Fig 13/15).
        ctx.ops(STEP_QP, (elems_stored * 4) as u64);
        ctx.write(STEP_QP, (elems_stored * std::mem::size_of::<T>()) as u64);
    });

    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host_ref;
    use gpu_sim::DeviceSpec;

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::a100()).with_workers(2)
    }

    fn wave(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.02).sin() * 40.0 + (i as f32 * 0.11).cos() * 3.0)
            .collect()
    }

    #[test]
    fn device_matches_host_reference_bytes() {
        let data = wave(5000);
        let eb = 0.01;
        let cfg = CuszpConfig::default();
        let mut gpu = gpu();
        let input = gpu.h2d(&data);
        let dc = compress_kernel(&mut gpu, &input, eb, cfg);
        let host_stream = host_ref::compress(&data, eb, cfg);
        let dev_stream = dc.to_host(&mut gpu);
        assert_eq!(dev_stream.fixed_lengths, host_stream.fixed_lengths);
        assert_eq!(dev_stream.payload, host_stream.payload);
        assert_eq!(dc.stream_bytes(), host_stream.stream_bytes());
    }

    #[test]
    fn device_roundtrip_respects_bound() {
        let data = wave(3333); // non-multiple of 32·32
        let eb = 0.005;
        let mut gpu = gpu();
        let input = gpu.h2d(&data);
        let dc = compress_kernel(&mut gpu, &input, eb, CuszpConfig::default());
        let out: DeviceBuffer<f32> = decompress_kernel(&mut gpu, &dc);
        let recon = gpu.d2h(&out);
        for (i, (&d, &r)) in data.iter().zip(&recon).enumerate() {
            assert!(
                (d as f64 - r as f64).abs() <= eb * (1.0 + 1e-6),
                "idx {i}: {d} vs {r}"
            );
        }
    }

    #[test]
    fn single_kernel_per_direction() {
        let data = wave(2048);
        let mut gpu = gpu();
        let input = gpu.h2d(&data);
        gpu.reset_timeline();
        let dc = compress_kernel(&mut gpu, &input, 0.01, CuszpConfig::default());
        assert_eq!(
            gpu.timeline().kernel_count(),
            1,
            "compression must be one kernel"
        );
        assert_eq!(
            gpu.timeline().memcpy_time(),
            0.0,
            "no transfers inside compression"
        );
        gpu.reset_timeline();
        let _: DeviceBuffer<f32> = decompress_kernel(&mut gpu, &dc);
        assert_eq!(
            gpu.timeline().kernel_count(),
            1,
            "decompression must be one kernel"
        );
        assert_eq!(gpu.timeline().memcpy_time(), 0.0);
    }

    #[test]
    fn all_four_steps_recorded() {
        let data = wave(4096);
        let mut gpu = gpu();
        let input = gpu.h2d(&data);
        gpu.reset_timeline();
        compress_kernel(&mut gpu, &input, 0.01, CuszpConfig::default());
        let k = gpu.timeline().kernels().next().unwrap();
        for step in [STEP_QP, STEP_FE, STEP_GS, STEP_BB] {
            assert!(k.steps.get(step).is_some(), "missing step {step}");
        }
    }

    #[test]
    fn zero_data_compresses_to_fixed_lengths_only() {
        let data = vec![0.0f32; 4096];
        let mut gpu = gpu();
        let input = gpu.h2d(&data);
        let dc = compress_kernel(&mut gpu, &input, 0.001, CuszpConfig::default());
        assert_eq!(dc.payload_len, 0);
        assert_eq!(dc.stream_bytes(), 128); // 4096/32 blocks × 1 byte
        let out: DeviceBuffer<f32> = decompress_kernel(&mut gpu, &dc);
        assert!(gpu.d2h(&out).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sparse_data_throughput_exceeds_dense() {
        // Zero blocks skip the bit-shuffle; simulated time must reflect it.
        let n = 32 * 32 * 64;
        let dense = wave(n);
        let sparse: Vec<f32> = dense
            .iter()
            .enumerate()
            .map(|(i, &v)| if i % 8 == 0 { v } else { 0.0 })
            .collect();
        // Make sparse truly sparse: whole blocks of zeros.
        let sparse: Vec<f32> = sparse
            .iter()
            .enumerate()
            .map(|(i, &v)| if (i / 1024) % 4 == 0 { v } else { 0.0 })
            .collect();
        let mut gpu = gpu();
        let dense_buf = gpu.h2d(&dense);
        let sparse_buf = gpu.h2d(&sparse);
        gpu.reset_timeline();
        compress_kernel(&mut gpu, &dense_buf, 0.001, CuszpConfig::default());
        let t_dense = gpu.timeline().gpu_time();
        gpu.reset_timeline();
        compress_kernel(&mut gpu, &sparse_buf, 0.001, CuszpConfig::default());
        let t_sparse = gpu.timeline().gpu_time();
        assert!(t_sparse < t_dense, "sparse {t_sparse} !< dense {t_dense}");
    }

    #[test]
    fn payload_allocation_is_dtype_bounded() {
        let data = wave(4096);
        let num_blocks = 4096 / 32;
        let mut gpu = gpu();
        let input = gpu.h2d(&data);
        let dc = compress_kernel(&mut gpu, &input, 0.01, CuszpConfig::default());
        // f32: (33+1)·L/8 bytes per block, not the f64 worst case.
        assert_eq!(dc.payload.len(), num_blocks * 34 * 32 / 8);

        let data64: Vec<f64> = data.iter().map(|&v| v as f64).collect();
        let input64 = gpu.h2d(&data64);
        let dc64 = compress_kernel(&mut gpu, &input64, 0.01, CuszpConfig::default());
        assert_eq!(dc64.payload.len(), num_blocks * 65 * 32 / 8);
        // Same stream bytes either way — only the allocation differs.
        let host32 = dc.to_host(&mut gpu);
        let host64 = dc64.to_host(&mut gpu);
        assert_eq!(host32.payload.len(), host64.payload.len());
    }

    #[test]
    fn compressed_h2d_roundtrip() {
        let data = wave(1000);
        let c = host_ref::compress(&data, 0.02, CuszpConfig::default());
        let mut gpu = gpu();
        let dc = compressed_h2d(&mut gpu, &c);
        let out: DeviceBuffer<f32> = decompress_kernel(&mut gpu, &dc);
        let recon = gpu.d2h(&out);
        assert_eq!(recon, host_ref::decompress::<f32>(&c));
    }

    #[test]
    fn works_with_one_worker_and_many() {
        let data = wave(8192);
        for workers in [1, 4] {
            let mut g = Gpu::new(DeviceSpec::a100()).with_workers(workers);
            let input = g.h2d(&data);
            let dc = compress_kernel(&mut g, &input, 0.01, CuszpConfig::default());
            let out: DeviceBuffer<f32> = decompress_kernel(&mut g, &dc);
            let recon = g.d2h(&out);
            for (&d, &r) in data.iter().zip(&recon) {
                assert!((d as f64 - r as f64).abs() <= 0.01 * (1.0 + 1e-6));
            }
        }
    }
}
