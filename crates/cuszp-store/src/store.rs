//! The sharded store: n-D array → chunk grid → compressed frames, read
//! back region-at-a-time through the block-granular codec layer.
//!
//! A shard is a single byte buffer (file, mmap, network blob): frames
//! back to back, then the [`ShardIndex`] and footer (see
//! [`crate::index`]). [`write_shard`] produces one; [`Shard::open`]
//! validates the index once, and [`Shard::read_region`] then serves
//! arbitrary axis-aligned sub-regions touching only the chunks — and
//! within each chunk only the codec blocks — that overlap the request.
//!
//! The read path is **copy-free** over the shard (frames decode straight
//! out of the borrowed bytes via each codec's `parse`, never
//! materialized) and **zero-alloc after warm-up**: all loop state lives
//! in fixed `[usize; MAX_DIMS]` arrays and the only buffers — the decode
//! tile and the codec arena — grow monotonically inside
//! [`StoreScratch`].

use crate::codec::{CodecScratch, ErrorBoundedCodec};
use crate::error::StoreError;
use crate::index::{ChunkEntry, ShardIndex, MAX_DIMS};
use crate::registry::CodecRegistry;
use cuszp_core::DType;
use std::ops::Range;
use std::path::Path;

/// Reusable buffers for shard reads. Warm it with one read of the
/// largest region you'll request; subsequent reads of any shape allocate
/// nothing.
#[derive(Default)]
pub struct StoreScratch {
    /// Per-codec scratch (cuSZp arena; the other codecs use the stack).
    pub codec: CodecScratch,
    /// f32 decode tile covering one run's block span (monotonic growth).
    tile: Vec<f32>,
    /// f64 decode tile (same role, other element type).
    tile64: Vec<f64>,
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// An element type shards can hold — sealed to `f32` and `f64`, matching
/// the two dtypes the index records. The trait carries the per-dtype
/// codec entry points so the chunk walker is written once, generically;
/// the methods are implementation detail, not a user-facing API.
pub trait ShardElement: sealed::Sealed + Copy + Default + 'static {
    /// The dtype tag recorded in the shard index.
    const DTYPE: DType;
    /// Encode one gathered chunk through `codec`.
    #[doc(hidden)]
    fn encode_chunk(
        codec: &dyn ErrorBoundedCodec,
        data: &[Self],
        eb: f64,
        scratch: &mut CodecScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), StoreError>;
    /// Decode a block range of one frame through `codec`.
    #[doc(hidden)]
    fn decode_chunk_blocks(
        codec: &dyn ErrorBoundedCodec,
        stream: &[u8],
        blocks: Range<usize>,
        scratch: &mut CodecScratch,
        out: &mut [Self],
    ) -> Result<usize, StoreError>;
    /// Split `scratch` into this dtype's decode tile (grown to at least
    /// `need` elements) and the codec scratch, borrowed disjointly.
    #[doc(hidden)]
    fn tile_and_codec(scratch: &mut StoreScratch, need: usize) -> (&mut [Self], &mut CodecScratch);
}

impl ShardElement for f32 {
    const DTYPE: DType = DType::F32;
    fn encode_chunk(
        codec: &dyn ErrorBoundedCodec,
        data: &[Self],
        eb: f64,
        scratch: &mut CodecScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        codec.encode(data, eb, scratch, out);
        Ok(())
    }
    fn decode_chunk_blocks(
        codec: &dyn ErrorBoundedCodec,
        stream: &[u8],
        blocks: Range<usize>,
        scratch: &mut CodecScratch,
        out: &mut [Self],
    ) -> Result<usize, StoreError> {
        codec.decode_blocks(stream, blocks, scratch, out)
    }
    fn tile_and_codec(scratch: &mut StoreScratch, need: usize) -> (&mut [Self], &mut CodecScratch) {
        if scratch.tile.len() < need {
            scratch.tile.resize(need, 0.0);
        }
        (&mut scratch.tile, &mut scratch.codec)
    }
}

impl ShardElement for f64 {
    const DTYPE: DType = DType::F64;
    fn encode_chunk(
        codec: &dyn ErrorBoundedCodec,
        data: &[Self],
        eb: f64,
        scratch: &mut CodecScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        codec.encode_f64(data, eb, scratch, out)
    }
    fn decode_chunk_blocks(
        codec: &dyn ErrorBoundedCodec,
        stream: &[u8],
        blocks: Range<usize>,
        scratch: &mut CodecScratch,
        out: &mut [Self],
    ) -> Result<usize, StoreError> {
        codec.decode_blocks_f64(stream, blocks, scratch, out)
    }
    fn tile_and_codec(scratch: &mut StoreScratch, need: usize) -> (&mut [Self], &mut CodecScratch) {
        if scratch.tile64.len() < need {
            scratch.tile64.resize(need, 0.0);
        }
        (&mut scratch.tile64, &mut scratch.codec)
    }
}

impl StoreScratch {
    /// Fresh, cold scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Accounting of one region read — the basis of the bytes-touched
/// assertions in the `partial_read` experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Chunks whose frames were opened.
    pub chunks_touched: usize,
    /// Codec blocks decoded (duplicates counted: two runs in one chunk
    /// may share a boundary block).
    pub blocks_decoded: usize,
    /// Compressed payload bytes read across all `decode_blocks` calls.
    pub payload_bytes_read: usize,
}

fn c_strides(dims: &[usize], out: &mut [usize; MAX_DIMS]) {
    let d = dims.len();
    out[d - 1] = 1;
    for i in (0..d - 1).rev() {
        out[i] = out[i + 1] * dims[i + 1];
    }
}

/// Compress `data` (C-order, `shape`) into a self-contained shard:
/// chunks of `chunk_shape` (edge chunks clamp), each encoded by `codec`
/// at absolute bound `eb`, followed by the index and footer. The
/// element type (`f32` or `f64`) is recorded in the index; the codec
/// must support it ([`StoreError::UnsupportedDtype`] otherwise).
pub fn write_shard<T: ShardElement>(
    data: &[T],
    shape: &[usize],
    chunk_shape: &[usize],
    codec: &dyn ErrorBoundedCodec,
    eb: f64,
) -> Result<Vec<u8>, StoreError> {
    if !codec.supports_dtype(T::DTYPE) {
        return Err(StoreError::UnsupportedDtype {
            codec: codec.name(),
            dtype: T::DTYPE,
        });
    }
    let ndim = shape.len();
    if ndim == 0 || ndim > MAX_DIMS || chunk_shape.len() != ndim {
        return Err(StoreError::Shape("rank must be 1..=8, shapes same rank"));
    }
    if shape.iter().chain(chunk_shape).any(|&d| d == 0) {
        return Err(StoreError::Shape("zero dimension"));
    }
    let total: usize = shape.iter().product();
    if data.len() != total {
        return Err(StoreError::Shape("data length != shape product"));
    }

    let mut grid = [1usize; MAX_DIMS];
    for i in 0..ndim {
        grid[i] = shape[i].div_ceil(chunk_shape[i]);
    }
    let num_chunks: usize = grid[..ndim].iter().product();
    let mut strides = [1usize; MAX_DIMS];
    c_strides(shape, &mut strides);

    let mut out = Vec::new();
    let mut entries = Vec::with_capacity(num_chunks);
    let mut scratch = CodecScratch::new();
    let mut gathered: Vec<T> = Vec::new();
    let mut frame = Vec::new();
    let mut cc = [0usize; MAX_DIMS];
    for _ in 0..num_chunks {
        // Chunk origin and clamped dims.
        let mut origin = [0usize; MAX_DIMS];
        let mut cdim = [1usize; MAX_DIMS];
        for i in 0..ndim {
            origin[i] = cc[i] * chunk_shape[i];
            cdim[i] = chunk_shape[i].min(shape[i] - origin[i]);
        }
        // Gather the chunk in C-order: rows contiguous along the last
        // axis.
        gathered.clear();
        let rows: usize = cdim[..ndim - 1].iter().product();
        let mut lc = [0usize; MAX_DIMS];
        for _ in 0..rows.max(1) {
            let mut base = origin[ndim - 1];
            for i in 0..ndim - 1 {
                base += (origin[i] + lc[i]) * strides[i];
            }
            gathered.extend_from_slice(&data[base..base + cdim[ndim - 1]]);
            for axis in (0..ndim.saturating_sub(1)).rev() {
                lc[axis] += 1;
                if lc[axis] < cdim[axis] {
                    break;
                }
                lc[axis] = 0;
            }
        }
        T::encode_chunk(codec, &gathered, eb, &mut scratch, &mut frame)?;
        entries.push(ChunkEntry {
            offset: out.len() as u64,
            len: frame.len() as u64,
            num_elements: gathered.len() as u64,
            format_id: codec.format_id(),
        });
        out.extend_from_slice(&frame);
        for axis in (0..ndim).rev() {
            cc[axis] += 1;
            if cc[axis] < grid[axis] {
                break;
            }
            cc[axis] = 0;
        }
    }

    ShardIndex {
        shape: shape.to_vec(),
        chunk_shape: chunk_shape.to_vec(),
        dtype: T::DTYPE,
        entries,
    }
    .append_to(&mut out);
    Ok(out)
}

/// Where an opened shard's bytes live: borrowed from the caller, or a
/// file mapping the shard owns ([`Shard::open_path`]).
enum ShardBytes<'a> {
    Borrowed(&'a [u8]),
    Mapped(datasets::mmap::MappedSlice<u8>),
}

impl ShardBytes<'_> {
    fn as_slice(&self) -> &[u8] {
        match self {
            ShardBytes::Borrowed(b) => b,
            ShardBytes::Mapped(m) => m,
        }
    }
}

impl std::fmt::Debug for ShardBytes<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardBytes::Borrowed(b) => write!(f, "Borrowed({} bytes)", b.len()),
            ShardBytes::Mapped(m) => write!(f, "Mapped({} bytes)", m.len()),
        }
    }
}

/// An opened shard: the backing bytes (borrowed or mapped) plus the
/// validated index.
#[derive(Debug)]
pub struct Shard<'a> {
    bytes: ShardBytes<'a>,
    index: ShardIndex,
}

impl<'a> Shard<'a> {
    /// Parse and validate the shard's index (see
    /// [`ShardIndex::parse`] for the normative validation order). The
    /// frame bytes stay borrowed — nothing is copied or decoded here.
    pub fn open(bytes: &'a [u8]) -> Result<Shard<'a>, StoreError> {
        let index = ShardIndex::parse(bytes)?;
        Ok(Shard {
            bytes: ShardBytes::Borrowed(bytes),
            index,
        })
    }

    /// Open a shard file by memory-mapping it (owned-buffer fallback on
    /// platforms without `mmap`; contents identical either way). Frames
    /// decode straight out of the page cache, so the zero-alloc and
    /// copy-free read properties of [`Shard::open`] carry over
    /// unchanged. I/O failures surface as [`StoreError::Io`].
    pub fn open_path(path: &Path) -> Result<Shard<'static>, StoreError> {
        let bytes = datasets::mmap::map_bytes(path)?;
        let index = ShardIndex::parse(&bytes)?;
        Ok(Shard {
            bytes: ShardBytes::Mapped(bytes),
            index,
        })
    }

    /// The validated index.
    pub fn index(&self) -> &ShardIndex {
        &self.index
    }

    /// Logical array shape.
    pub fn shape(&self) -> &[usize] {
        &self.index.shape
    }

    /// Total element count.
    pub fn num_elements(&self) -> usize {
        self.index.shape.iter().product()
    }

    /// Read the axis-aligned region at `origin` with `extent` into `out`
    /// (C-order over `extent`; `out.len()` must equal the region size).
    /// Codecs are resolved per chunk through `registry`.
    ///
    /// Only chunks overlapping the region are opened, and within each
    /// chunk only the codec blocks overlapping the region's rows are
    /// decoded — the returned [`ReadStats`] account for exactly that.
    /// With a warm `scratch` the call performs zero heap allocations.
    /// `T` must match the shard's recorded dtype
    /// ([`StoreError::DtypeMismatch`] otherwise).
    pub fn read_region<T: ShardElement>(
        &self,
        registry: &CodecRegistry,
        origin: &[usize],
        extent: &[usize],
        scratch: &mut StoreScratch,
        out: &mut [T],
    ) -> Result<ReadStats, StoreError> {
        if self.index.dtype != T::DTYPE {
            return Err(StoreError::DtypeMismatch {
                stored: self.index.dtype,
                requested: T::DTYPE,
            });
        }
        let ndim = self.index.shape.len();
        let shape = &self.index.shape;
        let chunk_shape = &self.index.chunk_shape;
        if origin.len() != ndim || extent.len() != ndim {
            return Err(StoreError::Shape("origin/extent rank"));
        }
        let mut total = 1usize;
        for i in 0..ndim {
            match origin[i].checked_add(extent[i]) {
                Some(end) if end <= shape[i] => {}
                _ => return Err(StoreError::Shape("region out of bounds")),
            }
            total *= extent[i];
        }
        if out.len() != total {
            return Err(StoreError::Shape("output length != region size"));
        }
        let mut stats = ReadStats::default();
        if total == 0 {
            return Ok(stats);
        }

        let mut grid = [1usize; MAX_DIMS];
        for i in 0..ndim {
            grid[i] = shape[i].div_ceil(chunk_shape[i]);
        }
        let mut grid_strides = [1usize; MAX_DIMS];
        c_strides(&grid[..ndim], &mut grid_strides);
        let mut out_strides = [1usize; MAX_DIMS];
        c_strides(extent, &mut out_strides);
        // Chunk coordinate box overlapping the region (inclusive hi).
        let mut clo = [0usize; MAX_DIMS];
        let mut chi = [0usize; MAX_DIMS];
        for i in 0..ndim {
            clo[i] = origin[i] / chunk_shape[i];
            chi[i] = (origin[i] + extent[i] - 1) / chunk_shape[i];
        }

        let mut cc = clo;
        loop {
            self.read_chunk_overlap(
                registry,
                origin,
                extent,
                &cc,
                &grid_strides,
                &out_strides,
                scratch,
                out,
                &mut stats,
            )?;
            let mut axis = ndim - 1;
            loop {
                cc[axis] += 1;
                if cc[axis] <= chi[axis] {
                    break;
                }
                cc[axis] = clo[axis];
                if axis == 0 {
                    return Ok(stats);
                }
                axis -= 1;
            }
        }
    }

    /// Decode the parts of chunk `cc` that overlap `[origin, origin+extent)`.
    #[allow(clippy::too_many_arguments)]
    fn read_chunk_overlap<T: ShardElement>(
        &self,
        registry: &CodecRegistry,
        origin: &[usize],
        extent: &[usize],
        cc: &[usize; MAX_DIMS],
        grid_strides: &[usize; MAX_DIMS],
        out_strides: &[usize; MAX_DIMS],
        scratch: &mut StoreScratch,
        out: &mut [T],
        stats: &mut ReadStats,
    ) -> Result<(), StoreError> {
        let ndim = self.index.shape.len();
        let shape = &self.index.shape;
        let chunk_shape = &self.index.chunk_shape;
        let mut chunk_id = 0usize;
        for i in 0..ndim {
            chunk_id += cc[i] * grid_strides[i];
        }
        let entry = self.index.entries[chunk_id];
        let codec = registry
            .get(entry.format_id)
            .ok_or(StoreError::UnknownCodec(entry.format_id))?;
        let frame = self
            .bytes
            .as_slice()
            .get(entry.offset as usize..(entry.offset + entry.len) as usize)
            .ok_or(StoreError::Truncated)?;
        let chunk_n = entry.num_elements as usize;
        // The frame's own element count must agree with the index before
        // any block range is derived from it — a self-consistent but
        // mismatched frame would otherwise trip decoder asserts.
        if codec.num_elements(frame)? != chunk_n {
            return Err(StoreError::Corrupt("frame element count vs index"));
        }
        stats.chunks_touched += 1;

        // Chunk geometry and the region intersection, chunk-local.
        let mut corigin = [0usize; MAX_DIMS];
        let mut cdim = [1usize; MAX_DIMS];
        let mut lo = [0usize; MAX_DIMS];
        let mut hi = [0usize; MAX_DIMS];
        for i in 0..ndim {
            corigin[i] = cc[i] * chunk_shape[i];
            cdim[i] = chunk_shape[i].min(shape[i] - corigin[i]);
            lo[i] = origin[i].max(corigin[i]) - corigin[i];
            hi[i] = (origin[i] + extent[i]).min(corigin[i] + cdim[i]) - corigin[i];
        }
        let mut cstrides = [1usize; MAX_DIMS];
        c_strides(&cdim[..ndim], &mut cstrides);

        let l = codec.block_len();
        // Walk the intersection row by row (rows contiguous along the
        // last axis in both the chunk and the output).
        let mut lc = lo;
        loop {
            let mut base = 0usize;
            let mut out_off = corigin[ndim - 1] + lo[ndim - 1] - origin[ndim - 1];
            for i in 0..ndim - 1 {
                base += lc[i] * cstrides[i];
                out_off += (corigin[i] + lc[i] - origin[i]) * out_strides[i];
            }
            let start = base + lo[ndim - 1];
            let end = base + hi[ndim - 1];
            let b0 = start / l;
            let b1 = end.div_ceil(l);
            let covered = (b1 * l).min(chunk_n) - b0 * l;
            let (tile, codec_scratch) = T::tile_and_codec(scratch, covered);
            let read =
                T::decode_chunk_blocks(codec, frame, b0..b1, codec_scratch, &mut tile[..covered])?;
            stats.blocks_decoded += b1 - b0;
            stats.payload_bytes_read += read;
            out[out_off..out_off + (end - start)]
                .copy_from_slice(&tile[start - b0 * l..end - b0 * l]);

            if ndim == 1 {
                return Ok(());
            }
            let mut axis = ndim - 2;
            loop {
                lc[axis] += 1;
                if lc[axis] < hi[axis] {
                    break;
                }
                lc[axis] = lo[axis];
                if axis == 0 {
                    return Ok(());
                }
                axis -= 1;
            }
        }
    }

    /// Read the whole array (`out.len()` must equal
    /// [`Shard::num_elements`]).
    pub fn read_all<T: ShardElement>(
        &self,
        registry: &CodecRegistry,
        scratch: &mut StoreScratch,
        out: &mut [T],
    ) -> Result<ReadStats, StoreError> {
        let origin = [0usize; MAX_DIMS];
        self.read_region(
            registry,
            &origin[..self.index.shape.len()],
            &self.index.shape,
            scratch,
            out,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CuszpCodec, CuszxCodec, CuzfpCodec};
    use cuszp_core::DType;

    fn field2d(h: usize, w: usize) -> Vec<f32> {
        (0..h * w)
            .map(|i| {
                let (y, x) = (i / w, i % w);
                ((x as f32) * 0.11).sin() * ((y as f32) * 0.07).cos() * 8.0
            })
            .collect()
    }

    #[test]
    fn roundtrip_all_codecs_1d() {
        let data: Vec<f32> = (0..5000).map(|i| (i as f32 * 0.01).sin() * 3.0).collect();
        let registry = CodecRegistry::with_defaults();
        let eb = 1e-3;
        for codec in registry.codecs() {
            let shard = write_shard(&data, &[5000], &[1024], codec, eb).unwrap();
            let shard = Shard::open(&shard).unwrap();
            let mut scratch = StoreScratch::new();
            let mut out = vec![0f32; 5000];
            let stats = shard.read_all(&registry, &mut scratch, &mut out).unwrap();
            assert_eq!(stats.chunks_touched, 5, "{}", codec.name());
            if codec.is_error_bounded() {
                for (i, (&d, &r)) in data.iter().zip(&out).enumerate() {
                    assert!(
                        (d as f64 - r as f64).abs() <= eb * (1.0 + 1e-6) + 1e-5,
                        "{} idx {i}: {d} vs {r}",
                        codec.name()
                    );
                }
            }
        }
    }

    #[test]
    fn region_read_matches_full_2d() {
        let (h, w) = (37, 53);
        let data = field2d(h, w);
        let registry = CodecRegistry::with_defaults();
        let codec = registry.get(*b"CZP1").unwrap();
        let shard_bytes = write_shard(&data, &[h, w], &[16, 16], codec, 1e-4).unwrap();
        let shard = Shard::open(&shard_bytes).unwrap();
        let mut scratch = StoreScratch::new();
        let mut full = vec![0f32; h * w];
        shard.read_all(&registry, &mut scratch, &mut full).unwrap();
        for (origin, extent) in [
            ([0, 0], [1, 1]),
            ([5, 7], [3, 11]),
            ([15, 15], [4, 4]), // straddles 4 chunks
            ([0, 0], [h, w]),
            ([36, 52], [1, 1]),
            ([10, 0], [1, w]),
        ] {
            let mut region = vec![0f32; extent[0] * extent[1]];
            shard
                .read_region(&registry, &origin, &extent, &mut scratch, &mut region)
                .unwrap();
            for y in 0..extent[0] {
                for x in 0..extent[1] {
                    assert_eq!(
                        region[y * extent[1] + x],
                        full[(origin[0] + y) * w + origin[1] + x],
                        "origin {origin:?} extent {extent:?} at ({y},{x})"
                    );
                }
            }
        }
    }

    #[test]
    fn single_block_read_touches_one_chunk_and_few_bytes() {
        let data: Vec<f32> = (0..65536).map(|i| (i as f32 * 0.001).sin()).collect();
        let registry = CodecRegistry::with_defaults();
        let codec = registry.get(*b"CZP1").unwrap();
        let shard_bytes = write_shard(&data, &[65536], &[4096], codec, 1e-4).unwrap();
        let shard = Shard::open(&shard_bytes).unwrap();
        let mut scratch = StoreScratch::new();
        let mut full = vec![0f32; 65536];
        let full_stats = shard.read_all(&registry, &mut scratch, &mut full).unwrap();
        let mut one = vec![0f32; 32];
        let stats = shard
            .read_region(&registry, &[8192], &[32], &mut scratch, &mut one)
            .unwrap();
        assert_eq!(stats.chunks_touched, 1);
        assert_eq!(stats.blocks_decoded, 1);
        assert!(
            stats.payload_bytes_read * 100 < full_stats.payload_bytes_read,
            "one block must read ≪ the full payload: {} vs {}",
            stats.payload_bytes_read,
            full_stats.payload_bytes_read
        );
        assert_eq!(one, full[8192..8224]);
    }

    #[test]
    fn unknown_codec_and_bad_regions() {
        let data = vec![1.0f32; 256];
        let codec = CuszxCodec;
        let shard_bytes = write_shard(&data, &[256], &[128], &codec, 0.1).unwrap();
        let shard = Shard::open(&shard_bytes).unwrap();
        let mut scratch = StoreScratch::new();
        let mut out = vec![0f32; 256];
        // Registry without cuSZx.
        let mut registry = CodecRegistry::new();
        registry.register(Box::new(CuszpCodec));
        assert_eq!(
            shard.read_all(&registry, &mut scratch, &mut out),
            Err(StoreError::UnknownCodec(*b"CZX1"))
        );
        let registry = CodecRegistry::with_defaults();
        assert!(matches!(
            shard.read_region(&registry, &[200], &[100], &mut scratch, &mut out),
            Err(StoreError::Shape(_))
        ));
        assert!(matches!(
            shard.read_region(&registry, &[0, 0], &[16, 16], &mut scratch, &mut out),
            Err(StoreError::Shape(_))
        ));
        let mut tiny = [0f32; 3];
        assert!(matches!(
            shard.read_region(&registry, &[0], &[4], &mut scratch, &mut tiny),
            Err(StoreError::Shape(_))
        ));
        // Empty extent: fine, zero stats.
        let stats = shard
            .read_region::<f32>(&registry, &[0], &[0], &mut scratch, &mut [])
            .unwrap();
        assert_eq!(stats, ReadStats::default());
    }

    #[test]
    fn write_shard_validates_shapes() {
        let data = vec![0f32; 10];
        assert!(matches!(
            write_shard(&data, &[10, 2], &[4], &CuszpCodec, 0.1),
            Err(StoreError::Shape(_))
        ));
        assert!(matches!(
            write_shard(&data, &[11], &[4], &CuszpCodec, 0.1),
            Err(StoreError::Shape(_))
        ));
        assert!(matches!(
            write_shard(&data, &[10], &[0], &CuszpCodec, 0.1),
            Err(StoreError::Shape(_))
        ));
        assert!(matches!(
            write_shard(&data, &[], &[], &CuszpCodec, 0.1),
            Err(StoreError::Shape(_))
        ));
    }

    #[test]
    fn f64_shard_roundtrips_through_cuszp_and_hybrid() {
        let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.013).sin() * 5.0).collect();
        let registry = CodecRegistry::with_defaults();
        let eb = 1e-6;
        for id in [*b"CZP1", *b"CZH1"] {
            let codec = registry.get(id).unwrap();
            let shard_bytes = write_shard(&data, &[4096], &[1000], codec, eb).unwrap();
            let shard = Shard::open(&shard_bytes).unwrap();
            assert_eq!(shard.index().dtype, DType::F64);
            let mut scratch = StoreScratch::new();
            let mut out = vec![0f64; 4096];
            shard.read_all(&registry, &mut scratch, &mut out).unwrap();
            for (i, (&d, &r)) in data.iter().zip(&out).enumerate() {
                assert!(
                    (d - r).abs() <= eb * (1.0 + 1e-12) + 1e-12,
                    "{} idx {i}: {d} vs {r}",
                    codec.name()
                );
            }
            // Reading it back as f32 is a typed dtype mismatch, caught
            // before any chunk is touched.
            let mut wrong = vec![0f32; 4096];
            assert_eq!(
                shard.read_all(&registry, &mut scratch, &mut wrong),
                Err(StoreError::DtypeMismatch {
                    stored: DType::F64,
                    requested: DType::F32,
                })
            );
        }
    }

    #[test]
    fn f64_write_through_unsupporting_codec_is_typed() {
        let data = vec![1.0f64; 256];
        assert_eq!(
            write_shard(&data, &[256], &[128], &CuszxCodec, 0.1),
            Err(StoreError::UnsupportedDtype {
                codec: "cuszx",
                dtype: DType::F64,
            })
        );
    }

    #[test]
    fn open_path_reads_match_in_memory_open() {
        let data: Vec<f32> = (0..2048).map(|i| (i as f32 * 0.01).cos() * 4.0).collect();
        let registry = CodecRegistry::with_defaults();
        let codec = registry.get(*b"CZH1").unwrap();
        let shard_bytes = write_shard(&data, &[2048], &[512], codec, 1e-4).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("cuszp_store_mmap_{}.shard", std::process::id()));
        std::fs::write(&path, &shard_bytes).unwrap();
        let mapped = Shard::open_path(&path).unwrap();
        let mut scratch = StoreScratch::new();
        let mut via_file = vec![0f32; 2048];
        mapped
            .read_all(&registry, &mut scratch, &mut via_file)
            .unwrap();
        let borrowed = Shard::open(&shard_bytes).unwrap();
        let mut via_mem = vec![0f32; 2048];
        borrowed
            .read_all(&registry, &mut scratch, &mut via_mem)
            .unwrap();
        assert_eq!(via_file, via_mem);
        drop(mapped);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(Shard::open_path(&path), Err(StoreError::Io(_))));
    }

    #[test]
    fn frame_element_count_cross_checked() {
        // Swap two equal-size frames' entries' num_elements: geometry
        // check at parse catches inconsistent counts, so instead corrupt
        // the frame itself to disagree with the (valid) index.
        let data: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let codec = CuzfpCodec { rate: 16 };
        let mut shard_bytes = write_shard(&data, &[256], &[128], &codec, 0.0).unwrap();
        // Frame 0 starts at byte 0: CUZFPH1 header's num_elements at 12.
        shard_bytes[12..20].copy_from_slice(&64u64.to_le_bytes());
        // Shrink claim: parse of the frame now sees fewer elements than
        // the index entry — but also a length mismatch; either way the
        // read must fail with a typed error, not panic.
        let shard = Shard::open(&shard_bytes).unwrap();
        let registry = CodecRegistry::with_defaults();
        let mut scratch = StoreScratch::new();
        let mut out = vec![0f32; 256];
        assert!(shard.read_all(&registry, &mut scratch, &mut out).is_err());
    }
}
