//! The simulated timeline: an ordered log of kernel launches, host<->device
//! copies and host compute, each with a simulated duration.
//!
//! The paper distinguishes *end-to-end* throughput (everything between
//! "data in GPU memory" and "compressed data in GPU memory") from *kernel*
//! throughput (kernel execution only). [`Timeline`] supports both: total
//! time sums every event; [`Timeline::gpu_time`] sums kernel bodies only.

use crate::profiler::KernelRecord;
use serde::{Deserialize, Serialize};

/// Direction of a host<->device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CopyDir {
    /// Host to device.
    H2D,
    /// Device to host.
    D2H,
}

/// One entry in the simulated timeline.
#[derive(Debug, Clone)]
pub enum Event {
    /// A kernel execution, with per-step traffic and computed duration.
    Kernel(KernelRecord),
    /// A PCIe transfer.
    Memcpy {
        /// Transfer direction.
        dir: CopyDir,
        /// Bytes moved.
        bytes: u64,
        /// Simulated duration in seconds.
        time: f64,
        /// Label for reports.
        label: &'static str,
    },
    /// Serial host-side work (e.g. cuSZ's Huffman-tree construction).
    Cpu {
        /// Label for reports.
        label: &'static str,
        /// Abstract serialized host ops charged.
        ops: u64,
        /// Simulated duration in seconds.
        time: f64,
    },
}

impl Event {
    /// Simulated duration of this event, seconds.
    pub fn time(&self) -> f64 {
        match self {
            Event::Kernel(k) => k.time,
            Event::Memcpy { time, .. } => *time,
            Event::Cpu { time, .. } => *time,
        }
    }
}

/// Ordered log of simulated events with O(1) aggregate queries.
#[derive(Debug, Default)]
pub struct Timeline {
    events: Vec<Event>,
    gpu: f64,
    launch_overhead: f64,
    memcpy: f64,
    cpu: f64,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a kernel record.
    pub fn push_kernel(&mut self, rec: KernelRecord) {
        self.gpu += rec.time - rec.launch_overhead;
        self.launch_overhead += rec.launch_overhead;
        self.events.push(Event::Kernel(rec));
    }

    /// Append a memcpy event.
    pub fn push_memcpy(&mut self, dir: CopyDir, bytes: u64, time: f64, label: &'static str) {
        self.memcpy += time;
        self.events.push(Event::Memcpy {
            dir,
            bytes,
            time,
            label,
        });
    }

    /// Append a host-compute event.
    pub fn push_cpu(&mut self, label: &'static str, ops: u64, time: f64) {
        self.cpu += time;
        self.events.push(Event::Cpu { label, ops, time });
    }

    /// Everything that has happened, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Total simulated time across all events (the end-to-end clock).
    pub fn total_time(&self) -> f64 {
        self.gpu + self.launch_overhead + self.memcpy + self.cpu
    }

    /// Kernel-body time only (the paper's "kernel throughput" denominator).
    pub fn gpu_time(&self) -> f64 {
        self.gpu
    }

    /// Accumulated fixed kernel-launch overhead.
    pub fn launch_overhead_time(&self) -> f64 {
        self.launch_overhead
    }

    /// Accumulated PCIe transfer time.
    pub fn memcpy_time(&self) -> f64 {
        self.memcpy
    }

    /// Accumulated serial host-compute time.
    pub fn cpu_time(&self) -> f64 {
        self.cpu
    }

    /// Number of kernels launched so far.
    pub fn kernel_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Kernel(_)))
            .count()
    }

    /// Iterate kernel records only.
    pub fn kernels(&self) -> impl Iterator<Item = &KernelRecord> {
        self.events.iter().filter_map(|e| match e {
            Event::Kernel(k) => Some(k),
            _ => None,
        })
    }

    /// Clear the log and aggregates (start a fresh measurement window).
    pub fn reset(&mut self) {
        self.events.clear();
        self.gpu = 0.0;
        self.launch_overhead = 0.0;
        self.memcpy = 0.0;
        self.cpu = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::TrafficCounters;

    fn dummy_kernel(time: f64, overhead: f64) -> KernelRecord {
        KernelRecord {
            name: "k",
            grid: 1,
            time,
            launch_overhead: overhead,
            steps: TrafficCounters::new(),
        }
    }

    #[test]
    fn aggregates_split_by_category() {
        let mut tl = Timeline::new();
        tl.push_kernel(dummy_kernel(1.0e-3, 5.0e-6));
        tl.push_memcpy(CopyDir::D2H, 1024, 2.0e-3, "hist");
        tl.push_cpu("tree", 1000, 3.0e-3);
        assert!((tl.gpu_time() - (1.0e-3 - 5.0e-6)).abs() < 1e-12);
        assert!((tl.memcpy_time() - 2.0e-3).abs() < 1e-12);
        assert!((tl.cpu_time() - 3.0e-3).abs() < 1e-12);
        assert!((tl.total_time() - 6.0e-3).abs() < 1e-12);
        assert_eq!(tl.kernel_count(), 1);
        assert_eq!(tl.events().len(), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let mut tl = Timeline::new();
        tl.push_cpu("x", 1, 1.0);
        tl.reset();
        assert_eq!(tl.total_time(), 0.0);
        assert!(tl.events().is_empty());
    }

    #[test]
    fn event_time_accessor() {
        let e = Event::Cpu {
            label: "x",
            ops: 1,
            time: 0.5,
        };
        assert_eq!(e.time(), 0.5);
    }
}
