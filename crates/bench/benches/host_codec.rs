//! Host codec throughput: `host_ref` (the step-by-step oracle) against
//! the word-parallel two-phase `fast` codec, both directions, both
//! element types. The harness experiment `repro host_codec` records the
//! same comparison into `BENCH_host_codec.json`; this criterion target
//! gives the statistically careful local view.

use criterion::{criterion_group, criterion_main, Criterion};
use cuszp_core::{fast, host_ref, CuszpConfig, FloatData};
use std::hint::black_box;

fn corpus<T: FloatData>(n: usize) -> Vec<T> {
    (0..n)
        .map(|i| {
            let x = i as f64;
            T::from_f64((x * 0.02).sin() * 40.0 + (x * 0.11).cos() * 3.0)
        })
        .collect()
}

fn bench_dtype<T: FloatData>(c: &mut Criterion, tag: &str) {
    let n = 1 << 20;
    let data = corpus::<T>(n);
    let eb = 0.01;
    let cfg = CuszpConfig::default();
    let stream = host_ref::compress(&data, eb, cfg);
    assert_eq!(
        stream,
        fast::compress(&data, eb, cfg),
        "fast codec must stay byte-identical to host_ref"
    );

    let mut group = c.benchmark_group(format!("host_codec_{tag}"));

    group.bench_function("compress_ref", |b| {
        b.iter(|| black_box(host_ref::compress(black_box(&data), eb, cfg).stream_bytes()))
    });
    group.bench_function("compress_fast", |b| {
        b.iter(|| black_box(fast::compress(black_box(&data), eb, cfg).stream_bytes()))
    });
    group.bench_function("compress_fast_mt", |b| {
        b.iter(|| black_box(fast::compress_threaded(black_box(&data), eb, cfg, 0).stream_bytes()))
    });
    group.bench_function("decompress_ref", |b| {
        b.iter(|| black_box(host_ref::decompress::<T>(black_box(&stream)).len()))
    });
    group.bench_function("decompress_fast", |b| {
        b.iter(|| black_box(fast::decompress::<T>(black_box(&stream)).len()))
    });
    group.bench_function("decompress_fast_mt", |b| {
        b.iter(|| black_box(fast::decompress_threaded::<T>(black_box(&stream), 0).len()))
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    bench_dtype::<f32>(c, "f32");
    bench_dtype::<f64>(c, "f64");
}

criterion_group!(benches, bench);
criterion_main!(benches);
