//! Smoke test: every registered experiment must run to completion at Tiny
//! scale and leave its artifacts behind — the CI guarantee that `repro all`
//! cannot bit-rot.

use harness::experiments::{registry, Ctx};

#[test]
fn every_experiment_runs_at_tiny_scale() {
    let out_dir = std::env::temp_dir().join(format!("cuszp_smoke_{}", std::process::id()));
    let ctx = Ctx {
        scale: datasets::Scale::Tiny,
        out_dir: out_dir.clone(),
        max_fields: 2,
    };
    for (id, _, runner) in registry() {
        runner(&ctx);
        let txt = out_dir.join(format!("{id}.txt"));
        // fig17 doubles as fig18; every other experiment writes under its
        // own id.
        assert!(
            txt.exists(),
            "experiment {id} left no text artifact at {}",
            txt.display()
        );
        let json = out_dir.join(format!("{id}.json"));
        assert!(json.exists(), "experiment {id} left no JSON artifact");
        let parsed: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&json).expect("read json"))
                .expect("artifact JSON parses");
        assert!(
            !parsed.is_null(),
            "experiment {id} wrote a null JSON artifact"
        );
    }
    std::fs::remove_dir_all(&out_dir).ok();
}
