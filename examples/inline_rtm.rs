//! In-situ compression of a time-varying RTM simulation (the paper's §6
//! "cuSZp with Time-Varying Simulations" scenario, Fig 22).
//!
//! A seismic shot evolves over 3600 timesteps; every 200 steps the solver
//! hands the wavefield snapshot — already resident in GPU memory — to
//! cuSZp, stores the compressed stream, and immediately verifies a
//! decompressed readback. Watch the throughput fall as reverberation fills
//! the volume and zero blocks disappear.
//!
//! ```text
//! cargo run --release --example inline_rtm
//! ```

use baselines::common::CuszpAdapter;
use baselines::Compressor;
use cuszp_core::ErrorBound;
use gpu_sim::{DeviceSpec, Gpu};

fn main() {
    let shape = vec![40usize, 64, 64];
    let comp = CuszpAdapter::new();
    let spec = DeviceSpec::a100();
    let mut total_raw = 0u64;
    let mut total_cmp = 0u64;

    println!("timestep  zero%   comp GB/s  decomp GB/s  ratio  max|err|/eb");
    for step in (200..=3600).step_by(200) {
        // The "simulation" produces this snapshot on the device.
        let field = datasets::rtm::snapshot(step, &shape);
        let eb = ErrorBound::Rel(1e-2).absolute(field.value_range() as f64);
        let mut gpu = Gpu::new(spec.clone());
        let input = gpu.h2d(&field.data);

        gpu.reset_timeline();
        let stream = comp.compress(&mut gpu, &input, &field.shape, eb);
        let comp_gbps = gpu.end_to_end_throughput_gbps(field.size_bytes());

        gpu.reset_timeline();
        let out = comp.decompress(&mut gpu, stream.as_ref());
        let decomp_gbps = gpu.end_to_end_throughput_gbps(field.size_bytes());
        let restored = gpu.d2h(&out);

        let max_err = cuszp_core::verify::max_abs_error(&field.data, &restored);
        assert!(
            cuszp_core::verify::check_bound(&field.data, &restored, eb),
            "bound violated at step {step}"
        );
        total_raw += field.size_bytes();
        total_cmp += stream.stream_bytes();
        println!(
            "{:>8}  {:>5.1}  {:>10.2}  {:>11.2}  {:>5.2}  {:>11.3}",
            step,
            datasets::rtm::zero_fraction(&field) * 100.0,
            comp_gbps,
            decomp_gbps,
            field.size_bytes() as f64 / stream.stream_bytes() as f64,
            max_err / eb
        );
    }
    println!(
        "\nshot archived: {:.1} MB raw -> {:.1} MB compressed ({:.1}x)",
        total_raw as f64 / 1e6,
        total_cmp as f64 / 1e6,
        total_raw as f64 / total_cmp as f64
    );
}
