//! The [`ErrorBoundedCodec`] trait and its three implementations.
//!
//! A codec is a self-describing byte-stream format with block-granular
//! partial decode: `decode_blocks(range)` reconstructs exactly the
//! elements covered by a block range, reading only those blocks' payload
//! bytes. All three implementations are copy-free (they parse borrowed
//! views over the frame bytes — never materialize the payload) and
//! allocation-free after warm-up (scratch lives in [`CodecScratch`] or on
//! the stack).

use crate::error::StoreError;
use baselines::{cuszx, cuzfp};
use cuszp_core::{fast, CompressedRef, CuszpConfig, DType, Scratch};
use std::ops::Range;

/// 4-byte codec identifier persisted in shard chunk entries.
pub type FormatId = [u8; 4];

/// Reusable per-codec scratch. One instance serves every registered
/// codec; with warm buffers a partial decode performs zero heap
/// allocations (the cuSZx/cuZFP adapters use only stack arrays, cuSZp
/// uses the arena).
#[derive(Default)]
pub struct CodecScratch {
    /// Arena for the cuSZp fast codec (offsets + worker state).
    pub cuszp: Scratch,
}

impl CodecScratch {
    /// Fresh, cold scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// An error-bounded (or, for cuZFP, fixed-rate) codec with block-granular
/// partial decode over its own self-describing byte-stream format.
///
/// # Contract
///
/// * `encode` replaces `out` with a frame that `num_elements` and the
///   decode methods accept; the frame embeds everything needed to decode
///   (no out-of-band metadata).
/// * `decode_blocks(stream, b0..b1, ..)` writes exactly
///   `min(b1·L, N) − min(b0·L, N)` elements (`L = block_len()`, `N` the
///   frame's element count; the final block may be ragged), value-
///   identical to decoding the whole frame and slicing. It returns the
///   payload bytes it read — the basis of the store's bytes-touched
///   accounting — and must read **only** the requested blocks' payload
///   plus per-block metadata.
/// * Corrupt frame bytes yield `Err`, never a panic or an over-read.
///   Out-of-range block ranges or wrong `out` lengths are caller bugs and
///   may panic.
/// * If `is_error_bounded()`, every decoded value is within `eb` of its
///   original (the conformance suite enforces this table-wide).
pub trait ErrorBoundedCodec {
    /// Persisted identifier resolving this codec at read time.
    fn format_id(&self) -> FormatId;
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
    /// Whether `encode`'s `eb` is honored as an absolute bound.
    fn is_error_bounded(&self) -> bool {
        true
    }
    /// Values per block — the granularity of partial decode.
    fn block_len(&self) -> usize;
    /// Compress `data` at absolute bound `eb` into `out` (contents
    /// replaced, capacity reused).
    fn encode(&self, data: &[f32], eb: f64, scratch: &mut CodecScratch, out: &mut Vec<u8>);
    /// Element count a frame declares (validating the frame on the way).
    fn num_elements(&self, stream: &[u8]) -> Result<usize, StoreError>;
    /// Decode blocks `blocks` into `out`; returns payload bytes read.
    fn decode_blocks(
        &self,
        stream: &[u8],
        blocks: Range<usize>,
        scratch: &mut CodecScratch,
        out: &mut [f32],
    ) -> Result<usize, StoreError>;
    /// Decode a whole frame (`out.len()` must equal its element count).
    fn decode_into(
        &self,
        stream: &[u8],
        scratch: &mut CodecScratch,
        out: &mut [f32],
    ) -> Result<usize, StoreError> {
        let n = self.num_elements(stream)?;
        assert_eq!(out.len(), n, "output slice length != frame element count");
        let num_blocks = n.div_ceil(self.block_len());
        self.decode_blocks(stream, 0..num_blocks, scratch, out)
    }
}

/// cuSZp frames (`CUSZP1`): quantize + Lorenzo, fixed-length blocks of
/// 32, Eq-2 offsets recomputed from fraction ⓐ.
#[derive(Debug, Clone, Copy, Default)]
pub struct CuszpCodec;

impl CuszpCodec {
    fn config() -> CuszpConfig {
        CuszpConfig::default()
    }

    fn parse(stream: &[u8]) -> Result<CompressedRef<'_>, StoreError> {
        let r = CompressedRef::parse(stream)?;
        if r.dtype != DType::F32 {
            return Err(StoreError::Corrupt("store frames are f32"));
        }
        Ok(r)
    }
}

impl ErrorBoundedCodec for CuszpCodec {
    fn format_id(&self) -> FormatId {
        *b"CZP1"
    }
    fn name(&self) -> &'static str {
        "cuszp"
    }
    fn block_len(&self) -> usize {
        Self::config().block_len
    }
    fn encode(&self, data: &[f32], eb: f64, scratch: &mut CodecScratch, out: &mut Vec<u8>) {
        fast::compress_into(&mut scratch.cuszp, data, eb, Self::config(), out);
    }
    fn num_elements(&self, stream: &[u8]) -> Result<usize, StoreError> {
        Ok(Self::parse(stream)?.num_elements as usize)
    }
    fn decode_blocks(
        &self,
        stream: &[u8],
        blocks: Range<usize>,
        scratch: &mut CodecScratch,
        out: &mut [f32],
    ) -> Result<usize, StoreError> {
        let r = Self::parse(stream)?;
        Ok(fast::decompress_blocks_into(
            r,
            blocks,
            &mut scratch.cuszp,
            out,
        ))
    }
}

/// cuSZx frames (`CUSZXH1`): constant-block flush + midpoint fixed-length
/// encoding, blocks of 128, offsets prefix-summed from the descriptor
/// table.
#[derive(Debug, Clone, Copy, Default)]
pub struct CuszxCodec;

impl ErrorBoundedCodec for CuszxCodec {
    fn format_id(&self) -> FormatId {
        *b"CZX1"
    }
    fn name(&self) -> &'static str {
        "cuszx"
    }
    fn block_len(&self) -> usize {
        cuszx::BLOCK
    }
    fn encode(&self, data: &[f32], eb: f64, _scratch: &mut CodecScratch, out: &mut Vec<u8>) {
        cuszx::host::compress(data, eb, out);
    }
    fn num_elements(&self, stream: &[u8]) -> Result<usize, StoreError> {
        Ok(cuszx::host::HostStream::parse(stream)?.num_elements)
    }
    fn decode_blocks(
        &self,
        stream: &[u8],
        blocks: Range<usize>,
        _scratch: &mut CodecScratch,
        out: &mut [f32],
    ) -> Result<usize, StoreError> {
        let s = cuszx::host::HostStream::parse(stream)?;
        Ok(s.decode_blocks(blocks, out))
    }
}

/// cuZFP frames (`CUZFPH1`): fixed-rate transform coding, 1-D blocks of
/// 4, block offsets are pure multiplications. **Not error-bounded** —
/// `encode`'s `eb` is ignored; quality is set by the rate.
#[derive(Debug, Clone, Copy)]
pub struct CuzfpCodec {
    /// Bits per value (1..=32).
    pub rate: u32,
}

impl Default for CuzfpCodec {
    fn default() -> Self {
        CuzfpCodec { rate: 16 }
    }
}

impl ErrorBoundedCodec for CuzfpCodec {
    fn format_id(&self) -> FormatId {
        *b"CZF1"
    }
    fn name(&self) -> &'static str {
        "cuzfp"
    }
    fn is_error_bounded(&self) -> bool {
        false
    }
    fn block_len(&self) -> usize {
        cuzfp::host::BLOCK
    }
    fn encode(&self, data: &[f32], _eb: f64, _scratch: &mut CodecScratch, out: &mut Vec<u8>) {
        cuzfp::host::compress(data, self.rate, out);
    }
    fn num_elements(&self, stream: &[u8]) -> Result<usize, StoreError> {
        Ok(cuzfp::host::HostStream::parse(stream)?.num_elements)
    }
    fn decode_blocks(
        &self,
        stream: &[u8],
        blocks: Range<usize>,
        _scratch: &mut CodecScratch,
        out: &mut [f32],
    ) -> Result<usize, StoreError> {
        let s = cuzfp::host::HostStream::parse(stream)?;
        Ok(s.decode_blocks(blocks, out))
    }
}
