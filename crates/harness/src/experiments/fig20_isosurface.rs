//! Fig 20 — isosurface quality on NYX at CR ≈ 8.
//!
//! The paper renders isosurfaces and eyeballs artifacts; we quantify the
//! same phenomenon with the crossing-cell Jaccard similarity: the set of
//! grid cells the isosurface passes through must match the original's.
//! cuSZp at CR≈8 keeps the surface nearly cell-identical; cuZFP at the
//! equivalent rate (4 bits/value) perturbs it visibly.

use super::fig16_artifacts::find_eb_for_ratio;
use super::Ctx;
use crate::measure::measure_pipeline;
use crate::report::{f2, Report};
use baselines::common::CuszpAdapter;
use baselines::CuzfpLike;
use datasets::{nyx, DatasetId};
use gpu_sim::DeviceSpec;
use metrics::isosurface::isosurface_similarity;
use serde::Serialize;

/// One compressor's isosurface result.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Compressor name.
    pub compressor: String,
    /// Achieved CR.
    pub ratio: f64,
    /// Crossing-cell Jaccard similarity to the original isosurface.
    pub similarity: f64,
}

/// Run the Fig 20 experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "fig20",
        "Isosurface similarity, NYX temperature, CR ~ 8",
        &ctx.out_dir,
    );
    let spec = DeviceSpec::a100();
    let field = nyx::field("temperature", &ctx.scale.shape(DatasetId::Nyx));
    // The paper uses isovalue 0 on a different field normalization; we use
    // the field median so the surface cuts through the bulk of the volume.
    // The isovalue sits at the 75th percentile: through real structure,
    // away from the log-normal bulk where quantization plateaus would make
    // the crossing set degenerate for every compressor.
    let mut sorted = field.data.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let isovalue = sorted[sorted.len() * 3 / 4];

    let cuszp = CuszpAdapter::new();
    let (eb, _) = find_eb_for_ratio(&cuszp, &field, 8.0);
    let m1 = measure_pipeline(&spec, &cuszp, &field, eb);
    let cuzfp = CuzfpLike::new(4);
    let m2 = measure_pipeline(&spec, &cuzfp, &field, 0.0);

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (name, m) in [("cuSZp", &m1), ("cuZFP", &m2)] {
        let sim = isosurface_similarity(&field.shape, &field.data, &m.reconstruction, isovalue);
        rows.push(vec![name.to_string(), f2(m.ratio), format!("{sim:.4}")]);
        out.push(Row {
            compressor: name.to_string(),
            ratio: m.ratio,
            similarity: sim,
        });
    }
    report.table(&["compressor", "CR", "isosurface similarity"], &rows);
    report.line(&format!(
        "\npaper: cuSZp at CR~8 is visually identical to the original isosurface; \
cuZFP shows visible artifacts. Here: cuSZp similarity {:.4} vs cuZFP {:.4}.",
        out[0].similarity, out[1].similarity
    ));
    report.save_json(&out);
    report.save_text();
}
