//! A bounded-admission worker pool, factored out of [`crate::Pipeline`]
//! so batch compression and the long-running socket service
//! (`cuszp-service`) share one pool implementation.
//!
//! The shape mirrors a CUDA stream pool: `workers` threads each drain a
//! single **bounded** job queue. The queue bound is the admission policy —
//! [`WorkerPool::submit`] blocks (backpressure, the batch pipeline's
//! behavior), while [`WorkerPool::try_submit`] fails fast and hands the
//! job back (the service's overload behavior: reply `BUSY` instead of
//! stalling a client). Each worker runs a caller-supplied loop body over a
//! [`JobSource`] and returns a summary value collected at [`close`].
//!
//! Steady-state submissions perform **no heap allocations**: the queue is
//! a rendezvous/array channel and jobs move by value.
//!
//! [`close`]: WorkerPool::close

use parking_lot::Mutex;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The receiving end a worker loop drains: a shared handle to the pool's
/// bounded job queue.
pub struct JobSource<J> {
    rx: Arc<Mutex<Receiver<J>>>,
}

impl<J> JobSource<J> {
    /// Block for the next job. `None` once the queue is closed (every
    /// sender dropped) **and** drained — the worker's signal to exit.
    ///
    /// The internal lock is held only while drawing one job, never while
    /// the caller processes it.
    pub fn next(&self) -> Option<J> {
        self.rx.lock().recv().ok()
    }
}

/// A pool of worker threads over one bounded job queue.
///
/// `J` is the job type (moved to a worker by value); `R` is the per-worker
/// summary returned by each worker's loop body (e.g.
/// [`crate::StreamStats`]) and collected by [`WorkerPool::close`].
pub struct WorkerPool<J, R> {
    tx: Option<SyncSender<J>>,
    handles: Vec<JoinHandle<R>>,
}

impl<J: Send + 'static, R: Send + 'static> WorkerPool<J, R> {
    /// Spawn `workers` threads, each running `body(worker_index, source)`
    /// to completion. `queue_depth` bounds jobs *queued* (not yet drawn by
    /// a worker); `0` makes the queue a rendezvous — a submission is
    /// admitted only when a worker is ready to take it.
    pub fn new<F>(workers: usize, queue_depth: usize, body: F) -> Self
    where
        F: Fn(usize, JobSource<J>) -> R + Send + Sync + 'static,
    {
        assert!(workers >= 1, "worker pool needs at least one worker");
        let (tx, rx) = sync_channel::<J>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let body = Arc::new(body);
        let handles = (0..workers)
            .map(|id| {
                let source = JobSource {
                    rx: Arc::clone(&rx),
                };
                let body = Arc::clone(&body);
                std::thread::spawn(move || body(id, source))
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Submit a job, blocking while the queue is full (backpressure).
    ///
    /// # Panics
    /// Panics if the pool's workers have all exited (the queue has no
    /// receiver left) — a bug in the worker body, not a load condition.
    pub fn submit(&self, job: J) {
        self.tx
            .as_ref()
            .expect("pool not closed")
            .send(job)
            .expect("worker pool alive");
    }

    /// Submit a job only if the queue has room **right now**; on a full
    /// queue the job is handed back untouched so the caller can reply
    /// `BUSY` (or retry) without blocking.
    pub fn try_submit(&self, job: J) -> Result<(), J> {
        match self.tx.as_ref().expect("pool not closed").try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(j)) | Err(TrySendError::Disconnected(j)) => Err(j),
        }
    }

    /// A clonable submitter handle, so each service connection can submit
    /// without sharing the pool itself. The pool drains and its workers
    /// exit only after the pool **and** every handle are closed/dropped.
    pub fn handle(&self) -> Submitter<J> {
        Submitter {
            tx: self.tx.as_ref().expect("pool not closed").clone(),
        }
    }

    /// Close the queue, wait for the workers to drain every queued job,
    /// and collect their summaries (in worker-index order).
    ///
    /// Outstanding [`Submitter`] handles keep the queue open; workers exit
    /// once those are dropped too.
    pub fn close(mut self) -> Vec<R> {
        drop(self.tx.take());
        self.handles
            .drain(..)
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    }
}

/// A clonable job submitter for a [`WorkerPool`] (see
/// [`WorkerPool::handle`]).
pub struct Submitter<J> {
    tx: SyncSender<J>,
}

impl<J> Clone for Submitter<J> {
    fn clone(&self) -> Self {
        Submitter {
            tx: self.tx.clone(),
        }
    }
}

impl<J> Submitter<J> {
    /// Non-blocking submit; hands the job back if the queue is full or
    /// the pool is gone. See [`WorkerPool::try_submit`].
    pub fn try_submit(&self, job: J) -> Result<(), J> {
        match self.tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(j)) | Err(TrySendError::Disconnected(j)) => Err(j),
        }
    }

    /// Blocking submit. See [`WorkerPool::submit`].
    pub fn submit(&self, job: J) {
        self.tx.send(job).expect("worker pool alive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_and_collects_summaries() {
        let pool: WorkerPool<usize, usize> = WorkerPool::new(3, 4, |_, src| {
            let mut sum = 0;
            while let Some(j) = src.next() {
                sum += j;
            }
            sum
        });
        for j in 1..=100 {
            pool.submit(j);
        }
        let sums = pool.close();
        assert_eq!(sums.len(), 3);
        assert_eq!(sums.iter().sum::<usize>(), 5050);
    }

    #[test]
    fn try_submit_reports_full_queue() {
        // One worker parked on a gate; rendezvous queue: the first job is
        // taken by the waiting worker, the second has nowhere to go.
        let gate = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&gate);
        let pool: WorkerPool<u32, ()> = WorkerPool::new(1, 0, move |_, src| {
            while let Some(_j) = src.next() {
                while g.load(Ordering::Acquire) == 0 {
                    std::thread::yield_now();
                }
            }
        });
        pool.submit(1); // rendezvous: accepted the moment the worker takes it
                        // Worker is now spinning on the gate; queue has capacity 0.
        let mut saw_full = false;
        for _ in 0..1000 {
            if let Err(j) = pool.try_submit(7) {
                assert_eq!(j, 7); // job handed back untouched
                saw_full = true;
                break;
            }
        }
        assert!(saw_full, "try_submit must fail while the worker is busy");
        gate.store(1, Ordering::Release);
        pool.close();
    }

    #[test]
    fn close_drains_queued_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let pool: WorkerPool<u32, ()> = WorkerPool::new(2, 8, move |_, src| {
            while src.next().is_some() {
                d.fetch_add(1, Ordering::Relaxed);
            }
        });
        for _ in 0..50 {
            pool.submit(0);
        }
        pool.close();
        assert_eq!(done.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn submitter_handles_keep_pool_open() {
        let pool: WorkerPool<u32, u32> = WorkerPool::new(1, 2, |_, src| {
            let mut n = 0;
            while src.next().is_some() {
                n += 1;
            }
            n
        });
        let h = pool.handle();
        let t = std::thread::spawn(move || {
            for _ in 0..10 {
                h.submit(1);
            }
            // handle dropped here
        });
        t.join().unwrap();
        assert_eq!(pool.close(), vec![10]);
    }
}
