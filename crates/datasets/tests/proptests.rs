//! Property tests for the dataset generators: the invariants every field
//! must satisfy regardless of scale, plus determinism.

use datasets::{generate_subset, DatasetId, Scale};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated field is finite, non-degenerate, and matches its
    /// declared shape — at any subset size.
    #[test]
    fn fields_are_well_formed(
        id_idx in 0usize..6,
        max_fields in 1usize..4,
    ) {
        let id = DatasetId::all()[id_idx];
        for field in generate_subset(id, Scale::Tiny, max_fields) {
            prop_assert_eq!(field.shape.iter().product::<usize>(), field.len());
            prop_assert!(field.data.iter().all(|v| v.is_finite()));
            prop_assert!(field.value_range() > 0.0, "degenerate {}", field.name);
        }
    }

    /// Generation is deterministic: two calls agree bit-for-bit.
    #[test]
    fn generation_is_deterministic(id_idx in 0usize..6) {
        let id = DatasetId::all()[id_idx];
        let a = generate_subset(id, Scale::Tiny, 2);
        let b = generate_subset(id, Scale::Tiny, 2);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn rtm_snapshots_fill_monotonically_in_trend() {
    // Zero fraction must trend downward over the shot (allowing local
    // wiggles, compare averages of early vs late thirds).
    let shape = Scale::Tiny.shape(DatasetId::Rtm);
    let fracs: Vec<f64> = (1..=12)
        .map(|i| datasets::rtm::zero_fraction(&datasets::rtm::snapshot(i * 300, &shape)))
        .collect();
    let early: f64 = fracs[..4].iter().sum::<f64>() / 4.0;
    let late: f64 = fracs[8..].iter().sum::<f64>() / 4.0;
    assert!(early > late + 0.05, "early {early} vs late {late}");
}

#[test]
fn io_roundtrip_through_disk() {
    let field = generate_subset(DatasetId::CesmAtm, Scale::Tiny, 1).remove(0);
    let path = std::env::temp_dir().join(format!("cuszp_ds_prop_{}.f32", std::process::id()));
    datasets::io::write_field(&path, &field).unwrap();
    let back = datasets::io::read_f32_le(&path).unwrap();
    assert_eq!(back, field.data);
    std::fs::remove_file(&path).unwrap();
}
