//! Dead-variant audit for the `#[non_exhaustive]` error enums: every
//! variant of [`FormatError`] and [`StoreError`] must be *constructible
//! from bytes* — i.e. some concrete malformed input produces it. An
//! error variant nothing can trigger is dead API surface hiding behind
//! the attribute; this suite keeps the enums honest.
//!
//! (Being in a different crate, these matches also prove downstream code
//! can still name and construct the variants — `#[non_exhaustive]` on an
//! enum restricts exhaustive matching, not variant construction.)

use cuszp_repro::cuszp_core::{
    hybrid, Compressed, CompressedRef, Cuszp, CuszpConfig, ErrorBound, FormatError,
};
use cuszp_repro::cuszp_store::{
    write_shard, CodecRegistry, CuszpCodec, CuszxCodec, Shard, StoreError, StoreScratch,
};
use std::collections::BTreeSet;

/// Stable label per variant; the wildcard arm is *required* here — the
/// enums are `#[non_exhaustive]` — which is exactly what the audit
/// documents.
fn format_variant(e: &FormatError) -> &'static str {
    match e {
        FormatError::BadMagic => "BadMagic",
        FormatError::Truncated => "Truncated",
        FormatError::Corrupt(_) => "Corrupt",
        FormatError::UnknownHybridMode(_) => "UnknownHybridMode",
        FormatError::Entropy(_) => "Entropy",
        _ => "future",
    }
}

fn store_variant(e: &StoreError) -> &'static str {
    match e {
        StoreError::Truncated => "Truncated",
        StoreError::BadMagic => "BadMagic",
        StoreError::Corrupt(_) => "Corrupt",
        StoreError::IndexOutOfBounds { .. } => "IndexOutOfBounds",
        StoreError::IndexOverlap { .. } => "IndexOverlap",
        StoreError::UnknownCodec(_) => "UnknownCodec",
        StoreError::Frame(_) => "Frame",
        StoreError::Shape(_) => "Shape",
        StoreError::DtypeMismatch { .. } => "DtypeMismatch",
        StoreError::UnsupportedDtype { .. } => "UnsupportedDtype",
        StoreError::Io(_) => "Io",
        _ => "future",
    }
}

fn sample_stream() -> Vec<u8> {
    let data: Vec<f32> = (0..200).map(|i| (i as f32 * 0.1).sin()).collect();
    Cuszp::new()
        .compress(&data, ErrorBound::Abs(1e-3))
        .to_bytes()
}

#[test]
fn every_format_error_variant_is_reachable_from_bytes() {
    let good = sample_stream();
    let mut seen = BTreeSet::new();
    let mut hit = |r: Result<CompressedRef<'_>, FormatError>| {
        seen.insert(format_variant(&r.expect_err("malformed input must fail")));
    };

    // BadMagic: wrong magic byte.
    let mut bad = good.clone();
    bad[0] = b'X';
    hit(CompressedRef::parse(&bad));
    // Truncated: any prefix cut.
    hit(CompressedRef::parse(&good[..good.len() - 1]));
    hit(CompressedRef::parse(&good[..3]));
    // Corrupt, via each header/accounting path.
    let mut bad = good.clone();
    bad[6] = 7; // lorenzo flag ∉ {0, 1}
    hit(CompressedRef::parse(&bad));
    let mut bad = good.clone();
    bad[7] = 9; // unknown dtype
    hit(CompressedRef::parse(&bad));
    let mut bad = good.clone();
    bad[16..20].copy_from_slice(&7u32.to_le_bytes()); // block_len % 8 != 0
    hit(CompressedRef::parse(&bad));
    let mut bad = good.clone();
    bad[20..28].copy_from_slice(&f64::NAN.to_le_bytes()); // bad bound
    hit(CompressedRef::parse(&bad));
    let mut bad = good.clone();
    bad.push(0); // trailing bytes
    hit(CompressedRef::parse(&bad));

    // `Compressed::validate` reaches Corrupt through its own checks.
    let c = Compressed::from_bytes(&good).unwrap();
    let mut wrong_fl = c.clone();
    wrong_fl.fixed_lengths.push(3);
    seen.insert(format_variant(
        &wrong_fl.validate().expect_err("fl size must fail"),
    ));
    let mut wrong_payload = c;
    wrong_payload.payload.pop();
    seen.insert(format_variant(
        &wrong_payload
            .validate()
            .expect_err("payload size must fail"),
    ));

    // The hybrid second stage's variants need a CUSZPHY1 frame. All-zero
    // data yields F = 0 blocks, so the frame is genuinely hybrid (the
    // constant-chunk flush wins over the fixed-length fallback).
    let hybrid_codec = Cuszp::with_config(CuszpConfig {
        hybrid: true,
        ..CuszpConfig::default()
    });
    let zeros = vec![0.0f32; 100_000];
    let hy = hybrid_codec.compress_serialized(&zeros, ErrorBound::Abs(1e-3));
    assert!(
        hy.starts_with(&hybrid::HYBRID_MAGIC),
        "frame must be hybrid"
    );
    // UnknownHybridMode: the first chunk's mode byte set to an undefined
    // value — rejected at parse, before any payload is trusted.
    let mut bad = hy.clone();
    bad[hybrid::HYBRID_HEADER_BYTES] = 9;
    seen.insert(format_variant(
        &hybrid_codec
            .decompress_serialized::<f32>(&bad)
            .expect_err("unknown mode byte must fail"),
    ));
    // Entropy: a constant chunk relabeled RLE — the table still
    // validates (comp < raw), but the 1-byte payload is not a legal RLE
    // stream, so decode fails typed inside the entropy coder.
    let mut bad = hy;
    assert_eq!(bad[hybrid::HYBRID_HEADER_BYTES], 1, "chunk 0 is constant");
    bad[hybrid::HYBRID_HEADER_BYTES] = 2;
    seen.insert(format_variant(
        &hybrid_codec
            .decompress_serialized::<f32>(&bad)
            .expect_err("truncated rle chunk must fail"),
    ));

    assert_eq!(
        seen.into_iter().collect::<Vec<_>>(),
        vec![
            "BadMagic",
            "Corrupt",
            "Entropy",
            "Truncated",
            "UnknownHybridMode"
        ],
        "every FormatError variant must be reachable from bytes"
    );
}

#[test]
fn every_store_error_variant_is_reachable_from_bytes() {
    let data: Vec<f32> = (0..256).map(|i| (i as f32 * 0.05).sin()).collect();
    let good = write_shard(&data, &[256], &[64], &CuszpCodec, 1e-3).unwrap();
    let registry = CodecRegistry::with_defaults();
    let mut scratch = StoreScratch::new();
    let mut out = vec![0f32; 256];
    let mut seen = BTreeSet::new();

    // Locate the index: footer's first 8 bytes hold its offset.
    let index_offset =
        u64::from_le_bytes(good[good.len() - 16..good.len() - 8].try_into().unwrap()) as usize;
    // 1-D index: magic(8) + ndim(1) + dtype(1) + shape(8) + chunk_shape(8)
    // + count(4).
    let entries = index_offset + 30;

    // Truncated: empty shard.
    seen.insert(store_variant(&Shard::open(&[]).unwrap_err()));
    // BadMagic: footer magic flipped.
    let mut bad = good.clone();
    let last = bad.len() - 1;
    bad[last] = b'X';
    seen.insert(store_variant(&Shard::open(&bad).unwrap_err()));
    // Corrupt: index offset pointing past the footer.
    let mut bad = good.clone();
    let pos = bad.len() - 16;
    bad[pos..pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    seen.insert(store_variant(&Shard::open(&bad).unwrap_err()));
    // IndexOutOfBounds: entry 0's length runs past the frame region.
    let mut bad = good.clone();
    bad[entries + 8..entries + 16].copy_from_slice(&(good.len() as u64 * 2).to_le_bytes());
    seen.insert(store_variant(&Shard::open(&bad).unwrap_err()));
    // IndexOverlap: entry 1 rewound into entry 0's byte range.
    let mut bad = good.clone();
    bad[entries + 28..entries + 36].copy_from_slice(&0u64.to_le_bytes());
    seen.insert(store_variant(&Shard::open(&bad).unwrap_err()));
    // UnknownCodec: entry 0's format id renamed.
    let mut bad = good.clone();
    bad[entries + 24..entries + 28].copy_from_slice(b"????");
    let shard = Shard::open(&bad).expect("index itself is intact");
    seen.insert(store_variant(
        &shard
            .read_all(&registry, &mut scratch, &mut out)
            .unwrap_err(),
    ));
    // Frame: frame 0's magic flipped — the index is fine, the chunk
    // fails its codec's own validation at read time.
    let mut bad = good.clone();
    bad[0] = b'X';
    let shard = Shard::open(&bad).expect("index itself is intact");
    let err = shard
        .read_all(&registry, &mut scratch, &mut out)
        .unwrap_err();
    assert_eq!(err, StoreError::Frame(FormatError::BadMagic));
    seen.insert(store_variant(&err));
    // Shape: rank mismatch on the read request.
    let shard = Shard::open(&good).unwrap();
    seen.insert(store_variant(
        &shard
            .read_region(&registry, &[0, 0], &[2, 2], &mut scratch, &mut out)
            .unwrap_err(),
    ));
    // DtypeMismatch: the index's dtype byte flipped to f64 — an f32 read
    // is refused before any chunk is touched.
    let mut bad = good.clone();
    bad[index_offset + 9] = 1; // dtype byte: f64
    let shard = Shard::open(&bad).expect("f64 is a valid dtype byte");
    seen.insert(store_variant(
        &shard
            .read_all(&registry, &mut scratch, &mut out)
            .unwrap_err(),
    ));
    // UnsupportedDtype: a cuSZx shard whose index dtype byte claims f64 —
    // the codec has no f64 path, so an f64 read fails typed at the first
    // chunk.
    let xgood = write_shard(&data, &[256], &[64], &CuszxCodec, 1e-3).unwrap();
    let xindex =
        u64::from_le_bytes(xgood[xgood.len() - 16..xgood.len() - 8].try_into().unwrap()) as usize;
    let mut bad = xgood.clone();
    bad[xindex + 9] = 1; // dtype byte: f64
    let shard = Shard::open(&bad).expect("index itself is intact");
    let mut out64 = vec![0f64; 256];
    seen.insert(store_variant(
        &shard
            .read_all(&registry, &mut scratch, &mut out64)
            .unwrap_err(),
    ));
    // Io: opening a path that does not exist.
    let missing = std::env::temp_dir().join(format!("cuszp_missing_{}.shard", std::process::id()));
    seen.insert(store_variant(&Shard::open_path(&missing).unwrap_err()));

    assert_eq!(
        seen.into_iter().collect::<Vec<_>>(),
        vec![
            "BadMagic",
            "Corrupt",
            "DtypeMismatch",
            "Frame",
            "IndexOutOfBounds",
            "IndexOverlap",
            "Io",
            "Shape",
            "Truncated",
            "UnknownCodec",
            "UnsupportedDtype",
        ],
        "every StoreError variant must be reachable from bytes"
    );
}
