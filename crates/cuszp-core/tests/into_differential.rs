//! Differential suite for the arena entry points: `compress_into` /
//! `decompress_into` must be **byte-identical** to the owned
//! `compress` / `decompress` API across element types, awkward tail
//! lengths, thread counts, and — the part unique to this suite — *dirty*
//! arenas and output buffers reused across wildly different calls.

use cuszp_core::{fast, CompressedRef, CuszpConfig, FloatData, Scratch};
use proptest::prelude::*;

/// Sequential, threaded few/many, auto-detected.
const THREADS: [usize; 4] = [1, 2, 5, 0];

/// One arena + one output buffer per differential check, deliberately
/// carried across every thread count so each iteration sees the previous
/// one's leftovers.
fn assert_into_matches_owned<T: FloatData>(
    data: &[T],
    eb: f64,
    cfg: CuszpConfig,
) -> Result<(), TestCaseError> {
    let owned = fast::compress(data, eb, cfg);
    let owned_bytes = owned.to_bytes();
    let owned_back: Vec<T> = fast::decompress(&owned);

    let mut scratch = Scratch::new();
    let mut stream = Vec::new();
    let mut restored = vec![T::default(); data.len()];
    for threads in THREADS {
        let r = fast::compress_into_threaded(&mut scratch, data, eb, cfg, threads, &mut stream)
            .to_owned();
        prop_assert_eq!(
            &stream,
            &owned_bytes,
            "serialized stream differs (threads={})",
            threads
        );
        prop_assert_eq!(&r, &owned, "parsed view differs (threads={})", threads);

        // Decode from the ref we just produced (borrowing `stream`) and
        // from the owned struct: both must reproduce the owned output.
        fast::decompress_into_threaded(
            CompressedRef::parse(&stream).expect("own output parses"),
            threads,
            &mut scratch,
            &mut restored,
        );
        prop_assert_eq!(
            &restored,
            &owned_back,
            "reconstruction differs (threads={})",
            threads
        );
        // compress_with (arena-backed owned output) closes the square.
        let with = fast::compress_with(&mut scratch, data, eb, cfg, threads);
        prop_assert_eq!(&with, &owned, "compress_with differs (threads={})", threads);
    }
    Ok(())
}

/// Lengths on, just before, and just after block boundaries.
fn awkward_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..700,
        Just(31usize),
        Just(32),
        Just(33),
        Just(127),
        Just(128),
        Just(129),
        Just(1024),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn f32_into_is_byte_identical(
        len in awkward_len(),
        seed in any::<u64>(),
        eb in 1e-5f64..1.0,
        block_len in prop_oneof![Just(8usize), Just(16), Just(32), Just(64), Just(128)],
        lorenzo in any::<bool>(),
    ) {
        let mut s = seed | 1;
        let data: Vec<f32> = (0..len).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s % 20_000) as f32 - 10_000.0) * 0.37
        }).collect();
        assert_into_matches_owned(&data, eb, CuszpConfig { block_len, lorenzo, ..CuszpConfig::default() })?;
    }

    #[test]
    fn f64_into_is_byte_identical(
        len in awkward_len(),
        seed in any::<u64>(),
        eb in 1e-6f64..0.5,
        lorenzo in any::<bool>(),
    ) {
        let mut s = seed | 1;
        let data: Vec<f64> = (0..len).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s % 2_000_000) as f64 - 1_000_000.0) * 1.3e-2
        }).collect();
        assert_into_matches_owned(&data, eb, CuszpConfig { lorenzo, ..CuszpConfig::default() })?;
    }

    #[test]
    fn dirty_arena_across_shapes_and_dtypes(
        lens in proptest::collection::vec(awkward_len(), 2..6),
        seed in any::<u64>(),
        eb in 1e-4f64..0.5,
    ) {
        // ONE arena + ONE output buffer across a random sequence of
        // shapes, alternating dtype: no call may see the last call's
        // state. (assert_into_matches_owned builds fresh ones, so here
        // the sequence itself shares them.)
        let mut scratch = Scratch::new();
        let mut stream = Vec::new();
        let mut s = seed | 1;
        for (i, &len) in lens.iter().enumerate() {
            let mut next = || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s };
            if i % 2 == 0 {
                let data: Vec<f32> = (0..len)
                    .map(|_| ((next() % 60_000) as f32 - 30_000.0) * 0.11)
                    .collect();
                let owned = fast::compress(&data, eb, CuszpConfig::default());
                fast::compress_into(&mut scratch, &data, eb, CuszpConfig::default(), &mut stream);
                prop_assert_eq!(&stream, &owned.to_bytes(), "f32 call {} differs", i);
                let mut back = vec![0f32; len];
                fast::decompress_into(owned.as_ref(), &mut scratch, &mut back);
                prop_assert_eq!(back, fast::decompress::<f32>(&owned), "f32 decode {} differs", i);
            } else {
                let data: Vec<f64> = (0..len)
                    .map(|_| ((next() % 999_999) as f64 - 500_000.0) * 2.3e-3)
                    .collect();
                let owned = fast::compress(&data, eb, CuszpConfig::default());
                fast::compress_into(&mut scratch, &data, eb, CuszpConfig::default(), &mut stream);
                prop_assert_eq!(&stream, &owned.to_bytes(), "f64 call {} differs", i);
                let mut back = vec![0f64; len];
                fast::decompress_into(owned.as_ref(), &mut scratch, &mut back);
                prop_assert_eq!(back, fast::decompress::<f64>(&owned), "f64 decode {} differs", i);
            }
        }
    }
}

#[test]
fn constant_and_zero_data_into_identical() {
    for v in [0.0f32, 1.25, -7.5] {
        let data = vec![v; 300];
        assert_into_matches_owned(&data, 0.01, CuszpConfig::default()).unwrap();
    }
}

#[test]
fn empty_input_into_identical() {
    assert_into_matches_owned::<f32>(&[], 0.1, CuszpConfig::default()).unwrap();
}

#[test]
fn wide_residuals_into_identical() {
    for amp in [3.0e4f32, 2.0e5, 3.0e6, 5.0e7] {
        let data: Vec<f32> = (0..512).map(|i| (i as f32 * 0.41).sin() * amp).collect();
        assert_into_matches_owned(&data, 1e-4, CuszpConfig::default()).unwrap();
    }
}
