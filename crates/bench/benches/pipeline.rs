//! Pipeline workload: single-stream vs batched multi-stream compression
//! of a batch of NYX-like fields.
//!
//! The single-stream baseline compresses the batch one chunk at a time on
//! the calling thread; the pipelined runs push the same chunks through
//! `cuszp-pipeline` worker pools. On a multi-core host the pipelined rows
//! should approach `min(workers, cores)`× the baseline; on a single core
//! they measure the pipeline's queueing overhead instead.

use criterion::{criterion_group, criterion_main, Criterion};
use cuszp_core::{Cuszp, ErrorBound};
use cuszp_pipeline::{Pipeline, PipelineConfig};
use datasets::{generate_subset, DatasetId, Scale};
use std::hint::black_box;

const CHUNK_ELEMS: usize = 1 << 14;

fn batch() -> Vec<(String, Vec<f32>)> {
    generate_subset(DatasetId::Nyx, Scale::Tiny, 4)
        .into_iter()
        .map(|f| (f.name.clone(), f.data))
        .collect()
}

fn bench(c: &mut Criterion) {
    let fields = batch();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("single_stream", |b| {
        b.iter(|| {
            let codec = Cuszp::new();
            let out: u64 = fields
                .iter()
                .map(|(_, data)| {
                    codec
                        .compress_chunked(black_box(data), ErrorBound::Rel(1e-2), CHUNK_ELEMS)
                        .stream_bytes()
                })
                .sum();
            black_box(out)
        })
    });

    for workers in [2usize, 4, 8] {
        group.bench_function(format!("pipelined/{workers}_workers"), |b| {
            b.iter(|| {
                let mut pipe = Pipeline::new(PipelineConfig {
                    chunk_elems: CHUNK_ELEMS,
                    ..PipelineConfig::with_workers(workers)
                });
                for (name, data) in &fields {
                    pipe.submit(name, data.clone(), ErrorBound::Rel(1e-2));
                }
                black_box(pipe.finish().stats.bytes_out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
