//! # metrics — quality and analysis metrics for lossy compression
//!
//! The QCAT-equivalent toolkit used throughout the evaluation:
//!
//! * [`error`] — pointwise error statistics (max abs/rel error, NRMSE,
//!   PSNR, Pearson correlation), matching the paper's `compareData` output
//!   and the error-bound check every compressor must pass.
//! * [`ssim`] — windowed structural similarity for 1-D through 4-D fields
//!   (paper Fig 18, `calculateSSIM`).
//! * [`cdf`] — block value-range CDFs (paper Fig 6, the smoothness argument
//!   behind fixed-length encoding).
//! * [`rate`] — compression-ratio and bit-rate accounting (Table 3 and the
//!   rate-distortion x-axes).
//! * [`image`] — PPM slice rendering with a perceptual colormap plus the
//!   stripe-artifact score used for Fig 16's cuSZx discussion
//!   (`PlotSliceImage`).
//! * [`isosurface`] — isosurface cell-crossing similarity, the quantitative
//!   stand-in for Fig 20's isosurface visualizations.

pub mod cdf;
pub mod error;
pub mod image;
pub mod isosurface;
pub mod rate;
pub mod ssim;

pub use error::ErrorStats;
pub use rate::CompressionStats;
