//! Device specifications and the analytic cost constants.
//!
//! ## Calibration notes
//!
//! The constants below are chosen so that the *measured traffic* of the
//! kernels in this repository lands in the throughput ranges the paper
//! reports on real hardware:
//!
//! * cuSZp records roughly 5–6 bytes of global traffic and 40–80 serialized
//!   integer ops per element. On the A100 model this yields ~40–140 GB/s
//!   end-to-end depending on data sparsity — matching the paper's 41.77 to
//!   140.44 GB/s compression range (avg 93.63) and the higher decompression
//!   numbers.
//! * `effective_compute` is *not* the peak ALU rate (A100 ≈ 19.5e12
//!   lane-ops/s): fused compressor kernels are latency/divergence-bound —
//!   bit-serial loops, data-dependent branches, lookback spins — and
//!   sustain a few percent of peak. 1.55e12 ops/s makes the recorded
//!   per-element op counts of the cuSZp kernels land on the paper's
//!   93.63 / 120.04 GB/s averages at realistic field sizes.
//! * PCIe and host rates make the cuSZ/cuSZx pipelines land at 1–2.2 GB/s
//!   end-to-end with a Memcpy-dominated breakdown (paper Fig 13/14) given
//!   the transfers those pipelines actually perform.
//! * V100 and RTX 3080 scale `mem_bandwidth` and `effective_compute` by
//!   their HBM2/GDDR6X bandwidth ratio, reproducing the §6 discussion
//!   (100.34 / 87.44 / 80.13 GB/s on one RTM snapshot).

use serde::{Deserialize, Serialize};

/// Static description of a simulated accelerator plus the host link.
///
/// All rates are in SI units (bytes/second, ops/second, seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, used in reports ("A100", "V100", ...).
    pub name: &'static str,
    /// Number of streaming multiprocessors (informational; the block
    /// scheduler uses it to size the worker pool upper bound).
    pub sm_count: usize,
    /// Sustained global-memory bandwidth for coalesced access, bytes/s.
    pub mem_bandwidth: f64,
    /// Efficiency multiplier applied to byte-granular / strided access
    /// (e.g. the bit-shuffle's per-block byte writes). In (0, 1].
    pub strided_efficiency: f64,
    /// Sustained serialized integer-op rate of a fully occupied fused
    /// kernel, ops/s. See module docs for what this calibrates.
    pub effective_compute: f64,
    /// Fixed cost of one kernel launch, seconds.
    pub kernel_launch_overhead: f64,
    /// Host<->device copy bandwidth (PCIe), bytes/s.
    pub pcie_bandwidth: f64,
    /// Fixed per-transfer latency (driver + DMA setup), seconds.
    pub pcie_latency: f64,
    /// Serial host CPU op rate used for CPU-side pipeline stages, ops/s.
    pub cpu_rate: f64,
    /// Effective-bandwidth fraction for *pageable* host transfers (pinned
    /// transfers run at `pcie_bandwidth`; pageable staging copies run at a
    /// fraction of it — ~3 GB/s on PCIe 4.0, matching Nsight measurements
    /// of the reference cuSZ/cuSZx pipelines).
    pub pageable_fraction: f64,
}

impl DeviceSpec {
    /// NVIDIA Ampere A100-40GB (the paper's evaluation platform,
    /// Argonne Swing cluster).
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100",
            sm_count: 108,
            mem_bandwidth: 1400.0e9,
            strided_efficiency: 0.25,
            effective_compute: 1.55e12,
            kernel_launch_overhead: 5.0e-6,
            pcie_bandwidth: 25.0e9,
            pcie_latency: 10.0e-6,
            cpu_rate: 1.5e9,
            pageable_fraction: 0.12,
        }
    }

    /// NVIDIA Volta V100-16GB (paper §6, compatibility discussion).
    pub fn v100() -> Self {
        DeviceSpec {
            name: "V100",
            sm_count: 80,
            mem_bandwidth: 900.0e9,
            strided_efficiency: 0.25,
            // Calibrated to the paper's 87.44 GB/s RTM point (A100:
            // 100.34) for integer-heavy fused kernels.
            effective_compute: 1.35e12,
            kernel_launch_overhead: 5.0e-6,
            pcie_bandwidth: 12.5e9, // PCIe 3.0 x16
            pcie_latency: 10.0e-6,
            cpu_rate: 1.5e9,
            pageable_fraction: 0.12,
        }
    }

    /// NVIDIA RTX 3080 10GB (paper §6, lower-end consumer GPU).
    pub fn rtx3080() -> Self {
        DeviceSpec {
            name: "RTX3080",
            sm_count: 68,
            mem_bandwidth: 760.0e9,
            strided_efficiency: 0.25,
            effective_compute: 1.24e12,
            kernel_launch_overhead: 5.0e-6,
            pcie_bandwidth: 25.0e9,
            pcie_latency: 10.0e-6,
            cpu_rate: 1.5e9,
            pageable_fraction: 0.12,
        }
    }

    /// Time to move `bytes` across the host link, including fixed latency.
    pub fn memcpy_time(&self, bytes: u64) -> f64 {
        self.pcie_latency + bytes as f64 / self.pcie_bandwidth
    }

    /// Time for a pageable-memory transfer of `bytes` (staged copies at
    /// `pcie_bandwidth · pageable_fraction`).
    pub fn memcpy_time_pageable(&self, bytes: u64) -> f64 {
        self.pcie_latency + bytes as f64 / (self.pcie_bandwidth * self.pageable_fraction)
    }

    /// Time for `ops` of serial host work.
    pub fn cpu_time(&self, ops: u64) -> f64 {
        ops as f64 / self.cpu_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_bandwidth() {
        let (a, v, r) = (
            DeviceSpec::a100(),
            DeviceSpec::v100(),
            DeviceSpec::rtx3080(),
        );
        assert!(a.mem_bandwidth > v.mem_bandwidth);
        assert!(v.mem_bandwidth > r.mem_bandwidth);
        assert!(a.effective_compute > v.effective_compute);
        assert!(v.effective_compute > r.effective_compute);
    }

    #[test]
    fn memcpy_includes_latency() {
        let spec = DeviceSpec::a100();
        let t0 = spec.memcpy_time(0);
        assert!((t0 - spec.pcie_latency).abs() < 1e-12);
        let t1 = spec.memcpy_time(25_000_000_000);
        assert!((t1 - (spec.pcie_latency + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn cpu_time_scales_linearly() {
        let spec = DeviceSpec::a100();
        assert!((spec.cpu_time(3_000_000_000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn strided_efficiency_in_unit_interval() {
        for spec in [
            DeviceSpec::a100(),
            DeviceSpec::v100(),
            DeviceSpec::rtx3080(),
        ] {
            assert!(spec.strided_efficiency > 0.0 && spec.strided_efficiency <= 1.0);
        }
    }
}
