//! Table 3 workload: the error-bounded compressors across the four REL
//! bounds (what the compression-ratio table sweeps).

use baselines::common::CuszpAdapter;
use baselines::{Compressor, CuszLike, CuszxLike};
use bench::{bench_field, compress_once, eb_for};
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::DatasetId;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let field = bench_field(DatasetId::Hurricane);
    let mut group = c.benchmark_group("table3_bounds_sweep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let comps: Vec<(&str, Box<dyn Compressor>)> = vec![
        ("cuSZp", Box::new(CuszpAdapter::new())),
        ("cuSZ", Box::new(CuszLike::new())),
        ("cuSZx", Box::new(CuszxLike::new())),
    ];
    for rel in [1e-1, 1e-4] {
        let eb = eb_for(&field, rel);
        for (name, comp) in &comps {
            group.bench_function(format!("{name}/rel{rel:e}"), |b| {
                b.iter(|| black_box(compress_once(comp.as_ref(), black_box(&field), eb)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
