//! Service load generator: sustained throughput and tail latency of the
//! `cuszp-service` socket front-end vs concurrent client count (ISSUE 6).
//!
//! Each concurrency level gets a **fresh** server (so its latency
//! histogram and counters describe that level alone) with one codec
//! worker and the default bounded admission queue. N client threads
//! hammer compress requests over real TCP sockets for a fixed window;
//! `BUSY` replies are counted and retried after a short backoff —
//! overload shows up as a busy rate, never as a hang. The level's p50
//! and p99 come from the server's own fixed-bucket latency histogram
//! (the same one the `/metrics` op exports), so the benchmark measures
//! exactly what operators will see.
//!
//! **Honest single-core reporting:** the container this repo grows in
//! has one CPU. Server workers, connection handlers, and all N clients
//! time-share it, so added concurrency cannot add throughput here — the
//! point of the sweep is that throughput *holds* (no collapse) while
//! the queue bound converts excess offered load into BUSY replies and a
//! bounded p99. `host_cpus` is recorded so readers can judge the
//! numbers; rerun on a real host for scaling curves.
//!
//! The artifact also re-proves the service's headline invariant in situ:
//! a steady-state request on a warmed connection performs **zero heap
//! operations** process-wide (counted across server handler, admission
//! queue, codec worker, and client when the `repro` binary's counting
//! allocator is installed).

use super::Ctx;
use crate::report::Report;
use cuszp_core::{DType, ErrorBound};
use cuszp_service::{Client, Server, ServiceConfig, ServiceError, Tenant};
use datasets::Scale;
use serde::Serialize;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// One concurrency level of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Concurrent client connections.
    pub clients: usize,
    /// Measurement window (seconds).
    pub seconds: f64,
    /// Compress requests completed (OK responses).
    pub requests: u64,
    /// Requests bounced with BUSY (each was retried).
    pub busy_rejections: u64,
    /// `busy / (busy + ok)` — the overload signal.
    pub busy_rate: f64,
    /// Raw payload bytes compressed per second, MB/s.
    pub throughput_mbps: f64,
    /// Median service latency (seconds), from the server's histogram.
    pub p50_seconds: f64,
    /// 99th-percentile service latency (seconds).
    pub p99_seconds: f64,
    /// Achieved wire-level compression ratio (raw / container bytes).
    pub ratio: f64,
}

/// The checked-in benchmark artifact (`BENCH_service.json`).
#[derive(Debug, Clone, Serialize)]
pub struct BenchFile {
    /// Artifact schema tag.
    pub experiment: String,
    /// CPUs visible to this run — with 1, concurrency cannot scale
    /// throughput; the sweep then demonstrates bounded-queue behavior,
    /// not parallel speedup.
    pub host_cpus: usize,
    /// Codec workers per server.
    pub workers: usize,
    /// Admission queue depth beyond in-service jobs.
    pub queue_depth: usize,
    /// Compress request payload (bytes of f32 data).
    pub payload_bytes: usize,
    /// Whether the zero-alloc proof below is live.
    pub counting_allocator_installed: bool,
    /// Heap operations per steady-state request on a warmed connection,
    /// counted process-wide (target 0).
    pub steady_state_heap_ops: u64,
    /// The concurrency sweep.
    pub rows: Vec<Row>,
}

fn wave(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (i as f32 * 0.021).sin() * 55.0 + (i as f32 * 0.0013).cos() * 7.0)
        .collect()
}

fn tenant(cap: u32) -> Tenant {
    Tenant {
        tenant_id: 7,
        dtype: DType::F32,
        bound: ErrorBound::Abs(1e-2),
        max_payload: cap,
        hybrid: false,
    }
}

/// Run one concurrency level against a fresh server.
fn run_level(clients: usize, elems: usize, window: Duration) -> Row {
    let server = Server::start(ServiceConfig::default()).expect("bind service");
    let addr = server.addr();
    let cap = (elems * 4) as u32;

    let t0 = Instant::now();
    let deadline = t0 + window;
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, tenant(cap)).expect("connect");
                let data = wave(elems);
                let (mut ok, mut busy) = (0u64, 0u64);
                while Instant::now() < deadline {
                    match client.compress_f32(&data) {
                        Ok(_) => ok += 1,
                        Err(ServiceError::Busy) => {
                            busy += 1;
                            // Back off briefly so the retry storm doesn't
                            // starve the worker on a single core.
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(e) => panic!("load client failed: {e}"),
                    }
                }
                (ok, busy)
            })
        })
        .collect();
    let mut ok = 0u64;
    let mut busy = 0u64;
    for h in handles {
        let (o, b) = h.join().expect("client thread");
        ok += o;
        busy += b;
    }
    let seconds = t0.elapsed().as_secs_f64();

    let metrics = server.metrics();
    let p50 = metrics.latency.quantile_seconds(0.50).unwrap_or(0.0);
    let p99 = metrics.latency.quantile_seconds(0.99).unwrap_or(0.0);
    let raw = metrics.raw_bytes.load(Ordering::Relaxed);
    let ratio = metrics.ratio();
    let busy_total = metrics.busy_rejections.load(Ordering::Relaxed);
    server.shutdown();

    Row {
        clients,
        seconds,
        requests: ok,
        busy_rejections: busy_total.max(busy),
        busy_rate: busy as f64 / (busy + ok).max(1) as f64,
        throughput_mbps: raw as f64 / seconds / 1.0e6,
        p50_seconds: p50,
        p99_seconds: p99,
        ratio,
    }
}

/// Measure steady-state heap operations per request on one warmed
/// connection (process-wide: handler, queue, worker, client).
fn steady_state_heap_ops(elems: usize) -> u64 {
    let server = Server::start(ServiceConfig::default()).expect("bind service");
    let mut client = Client::connect(server.addr(), tenant((elems * 4) as u32)).expect("connect");
    let data = wave(elems);
    client.compress_f32(&data).expect("warm-up request");
    let before = alloc_counter::snapshot();
    const REQS: u64 = 10;
    for _ in 0..REQS {
        client.compress_f32(&data).expect("steady-state request");
    }
    let ops = alloc_counter::snapshot().since(&before).heap_ops();
    server.shutdown();
    ops / REQS
}

/// Run the service load experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "service_load",
        "Service sustained throughput and p99 latency vs concurrent clients",
        &ctx.out_dir,
    );
    let window = match ctx.scale {
        Scale::Tiny => Duration::from_millis(250),
        Scale::Small => Duration::from_millis(700),
        Scale::Medium => Duration::from_millis(2000),
    };
    let elems = 16 * 1024; // 64 KiB payloads: service-shaped, latency-visible
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let installed = alloc_counter::is_installed();
    let defaults = ServiceConfig::default();
    report.line(&format!(
        "{} CPU(s); {} codec worker(s), queue depth {}; 64 KiB f32 payloads; \
         {:.2}s window per level; counting allocator {}",
        host_cpus,
        defaults.workers,
        defaults.queue_depth,
        window.as_secs_f64(),
        if installed {
            "installed"
        } else {
            "NOT installed (heap-op count inert)"
        }
    ));
    if host_cpus == 1 {
        report.line(
            "single-core host: expect flat throughput and a rising busy rate with \
             added clients — the sweep demonstrates bounded-queue overload \
             behavior, not parallel scaling",
        );
    }

    let levels = [1usize, 2, 4, 8];
    let rows: Vec<Row> = levels
        .iter()
        .map(|&n| run_level(n, elems, window))
        .collect();

    report.table(
        &[
            "clients",
            "req/s",
            "MB/s",
            "busy rate",
            "p50 ms",
            "p99 ms",
            "ratio",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}", r.clients),
                    format!("{:.0}", r.requests as f64 / r.seconds),
                    format!("{:.0}", r.throughput_mbps),
                    format!("{:.1}%", r.busy_rate * 100.0),
                    format!("{:.3}", r.p50_seconds * 1e3),
                    format!("{:.3}", r.p99_seconds * 1e3),
                    format!("{:.2}", r.ratio),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let heap_ops = steady_state_heap_ops(elems);
    report.line(&format!(
        "steady-state heap ops per request (process-wide): {heap_ops} (target 0)"
    ));

    let bench = BenchFile {
        experiment: "service_load".to_string(),
        host_cpus,
        workers: defaults.workers,
        queue_depth: defaults.queue_depth,
        payload_bytes: elems * 4,
        counting_allocator_installed: installed,
        steady_state_heap_ops: heap_ops,
        rows: rows.clone(),
    };

    report.save_json(&rows);
    report.save_text();

    let root = ctx.out_dir.parent().unwrap_or(std::path::Path::new("."));
    let path = root.join("BENCH_service.json");
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench file");
    std::fs::write(&path, json).expect("write BENCH_service.json");
    report.line(&format!(
        "benchmark trajectory written to {}",
        path.display()
    ));
}
