//! Fig 1 — the motivating RTM example: two reconstructions with *similar
//! SSIM* can have very different visual quality.
//!
//! We reproduce the setup: an RTM slice reconstructed (a) by cuSZp at a
//! moderate bound and (b) by cuSZx at a bound chosen so its SSIM is at
//! least as high — yet (b) carries constant-block artifacts the stripe
//! score exposes, echoing the paper's point that PSNR/SSIM alone can
//! mislead and visualization must be checked too.

use super::Ctx;
use crate::measure::measure_pipeline;
use crate::report::Report;
use baselines::common::CuszpAdapter;
use baselines::CuszxLike;
use cuszp_core::ErrorBound;
use datasets::{rtm, DatasetId, Field};
use gpu_sim::DeviceSpec;
use metrics::image::{banding_score, stripe_score, write_ppm};
use metrics::ssim::ssim;
use serde::Serialize;

/// One reconstruction's summary.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Label ("reconstructed data1/2").
    pub label: String,
    /// Compressor used.
    pub compressor: String,
    /// SSIM vs the original.
    pub ssim: f64,
    /// Stripe-excess score of the rendered slice.
    pub stripe: f64,
    /// Banding score (error coherence over 128-value segments).
    pub banding: f64,
}

/// Run the Fig 1 experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "fig01",
        "Motivation: similar SSIM, different visual quality (RTM)",
        &ctx.out_dir,
    );
    let spec = DeviceSpec::a100();
    let field = rtm::snapshot(2000, &ctx.scale.shape(DatasetId::Rtm));
    let slice_idx = field.shape[0] / 3;
    let (h, w, plane) = field.slice2d(slice_idx);
    write_ppm(&ctx.out_dir.join("fig01_original.ppm"), h, w, &plane).expect("write ppm");
    let base_stripe = stripe_score(h, w, &plane, 64);

    let eb1 = ErrorBound::Rel(2e-2).absolute(field.value_range() as f64);
    let m1 = measure_pipeline(&spec, &CuszpAdapter::new(), &field, eb1);
    let eb2 = ErrorBound::Rel(1e-2).absolute(field.value_range() as f64);
    let m2 = measure_pipeline(&spec, &CuszxLike::new(), &field, eb2);

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (label, comp_name, m) in [
        ("reconstructed data1", "cuSZp", &m1),
        ("reconstructed data2", "cuSZx", &m2),
    ] {
        let s = ssim(&field.data, &m.reconstruction, &field.shape);
        let recon = Field::new(
            field.name.clone(),
            field.shape.clone(),
            m.reconstruction.clone(),
        );
        let (h, w, rplane) = recon.slice2d(slice_idx);
        let file = format!("fig01_{}.ppm", comp_name.to_lowercase());
        write_ppm(&ctx.out_dir.join(&file), h, w, &rplane).expect("write ppm");
        let stripe = (stripe_score(h, w, &rplane, 64) - base_stripe).max(0.0);
        let banding = banding_score(&field.data, &m.reconstruction, 128);
        rows.push(vec![
            label.to_string(),
            comp_name.to_string(),
            format!("{s:.4}"),
            format!("{stripe:.4}"),
            format!("{banding:.4}"),
        ]);
        out.push(Row {
            label: label.to_string(),
            compressor: comp_name.to_string(),
            ssim: s,
            stripe,
            banding,
        });
    }
    report.table(
        &["label", "compressor", "SSIM", "stripe excess", "banding"],
        &rows,
    );
    report.line(
        "\npaper (Fig 1): data2 has the *higher* SSIM (0.9948 vs 0.9871) yet shows \
obvious distorted patterns — statistics alone are not sufficient quality \
evidence. The banding score (spatially coherent error) is the measurable \
counterpart of the visible artifact.",
    );
    report.save_json(&out);
    report.save_text();
}
